//! OPTICS/CSV-style density plot ordering (paper §V).
//!
//! CSV plots every vertex along the X axis in a reachability order and uses
//! the co-clique size of the edge connecting it to the already-plotted
//! region as its Y value, so that dense subgraphs appear as *flat peaks*.
//! That traversal is a maximum-weight Prim walk: repeatedly emit the
//! unvisited vertex with the heaviest edge into the emitted region, seeding
//! each new component at its heaviest vertex. Ties break on vertex id so
//! plots are deterministic and testable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tkc_core::decompose::Decomposition;
use tkc_graph::{Graph, VertexId};

/// A density plot: vertices in plotted order with their Y values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensityPlot {
    /// Vertices left to right.
    pub order: Vec<VertexId>,
    /// Y value (co-clique size) of each plotted vertex.
    pub values: Vec<u32>,
}

impl DensityPlot {
    /// Number of plotted vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing is plotted.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The plotted position of each vertex (`usize::MAX` for absent ids);
    /// used by dual-view correspondence markers.
    pub fn positions(&self, num_vertices: usize) -> Vec<usize> {
        let mut pos = vec![usize::MAX; num_vertices];
        for (i, v) in self.order.iter().enumerate() {
            pos[v.index()] = i;
        }
        pos
    }

    /// Y value by vertex id (0 for absent ids).
    pub fn value_by_vertex(&self, num_vertices: usize) -> Vec<u32> {
        let mut val = vec![0u32; num_vertices];
        for (i, v) in self.order.iter().enumerate() {
            val[v.index()] = self.values[i];
        }
        val
    }

    /// Largest Y value (0 when empty).
    pub fn max_value(&self) -> u32 {
        self.values.iter().copied().max().unwrap_or(0)
    }
}

/// Builds the plot from an arbitrary per-edge value vector (indexed by raw
/// edge id). This is the generic entry point shared by the Triangle K-Core
/// proxy, the CSV baseline and the template-pattern plots.
pub fn density_order(g: &Graph, edge_value: &[u32]) -> DensityPlot {
    let n = g.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // best[v] = current heaviest edge joining v to the plotted region;
    // pushed[v] = v has entered the frontier at least once.
    let mut best = vec![0u32; n];
    let mut pushed = vec![false; n];

    // Seed list: vertices by their own heaviest incident value, densest
    // first (tie: smaller id). Each connected region starts at its peak;
    // a cursor scans for the next unvisited seed when the frontier drains.
    let mut seeds: Vec<(u32, u32)> = (0..n as u32)
        .map(|v| {
            let own = g
                .neighbors(VertexId(v))
                .map(|(_, e)| edge_value[e.index()])
                .max()
                .unwrap_or(0);
            (own, v)
        })
        .collect();
    seeds.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut seed_cursor = 0usize;

    // Frontier max-heap keyed (connecting value, Reverse(vertex id)) with
    // lazy deletion.
    let mut heap: BinaryHeap<(u32, Reverse<u32>)> = BinaryHeap::new();

    while order.len() < n {
        let (v, val) = loop {
            match heap.pop() {
                Some((val, Reverse(v))) => {
                    let vi = v as usize;
                    if visited[vi] || val < best[vi] {
                        continue; // stale entry
                    }
                    break (v, val);
                }
                None => {
                    // Frontier drained: start the next region at its peak.
                    while visited[seeds[seed_cursor].1 as usize] {
                        seed_cursor += 1;
                    }
                    let (val, v) = seeds[seed_cursor];
                    break (v, val);
                }
            }
        };
        let vi = v as usize;
        visited[vi] = true;
        order.push(VertexId(v));
        values.push(val);
        for (w, e) in g.neighbors(VertexId(v)) {
            let wi = w.index();
            if visited[wi] {
                continue;
            }
            let cand = edge_value[e.index()];
            // First contact always enters the frontier (even at value 0,
            // so components are exhausted before the next seed fires);
            // afterwards only improvements re-enter.
            if !pushed[wi] || cand > best[wi] {
                pushed[wi] = true;
                best[wi] = best[wi].max(cand);
                heap.push((best[wi], Reverse(w.0)));
            }
        }
    }
    DensityPlot { order, values }
}

/// The paper's plot: Y = κ(e) + 2 per edge (co-clique proxy, §V), with
/// triangle-free edges contributing their trivial value 2 and isolated
/// vertices plotted at 0.
pub fn kappa_density_plot(g: &Graph, decomp: &Decomposition) -> DensityPlot {
    let mut vals = vec![0u32; g.edge_bound()];
    for e in g.edge_ids() {
        vals[e.index()] = decomp.kappa(e) + 2;
    }
    density_order(g, &vals)
}

/// Pearson correlation of the per-vertex Y values of two plots over the
/// same vertex set — the quantitative form of Figure 6's "similar (S)"
/// annotation. Returns 1.0 for two constant identical vectors.
pub fn plot_similarity(a: &DensityPlot, b: &DensityPlot, num_vertices: usize) -> f64 {
    let va = a.value_by_vertex(num_vertices);
    let vb = b.value_by_vertex(num_vertices);
    pearson(
        &va.iter().map(|&x| x as f64).collect::<Vec<_>>(),
        &vb.iter().map(|&x| x as f64).collect::<Vec<_>>(),
    )
}

/// Pearson correlation coefficient; 1.0 when both sides are constant and
/// equal, 0.0 when either side is constant but they differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.is_empty() {
        return 1.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 && syy == 0.0 {
        return if xs == ys { 1.0 } else { 0.0 };
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_core::decompose::triangle_kcore_decomposition;
    use tkc_graph::generators;

    fn two_cliques_plot() -> (Graph, DensityPlot) {
        // K6 and K4 joined by a path; K6 should be plotted first as a flat
        // peak of 6s, then the K4 as a run of 4s.
        let mut g = generators::complete(6);
        g.add_vertices(4);
        for i in 6..10u32 {
            for j in (i + 1)..10 {
                g.add_edge(VertexId(i), VertexId(j)).unwrap();
            }
        }
        g.add_edge(VertexId(5), VertexId(6)).unwrap();
        let d = triangle_kcore_decomposition(&g);
        let plot = kappa_density_plot(&g, &d);
        (g, plot)
    }

    #[test]
    fn plots_every_vertex_once() {
        let (g, plot) = two_cliques_plot();
        assert_eq!(plot.len(), g.num_vertices());
        let mut sorted: Vec<_> = plot.order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.num_vertices());
    }

    #[test]
    fn dense_region_forms_flat_peak_first() {
        let (_, plot) = two_cliques_plot();
        // First six plotted vertices are the K6 at value 6.
        assert!(
            plot.values[..6].iter().all(|&v| v == 6),
            "{:?}",
            plot.values
        );
        assert!(plot.order[..6].iter().all(|v| v.index() < 6));
        // The K4 is entered through the weak bridge (a valley at 2), then
        // rises to its plateau of 4s — the OPTICS dip-and-peak shape.
        assert_eq!(plot.values[6..], [2, 4, 4, 4]);
        assert!(plot.order[6..].iter().all(|v| v.index() >= 6));
    }

    #[test]
    fn isolated_vertices_trail_at_zero() {
        let mut g = generators::complete(3);
        g.add_vertices(2);
        let d = triangle_kcore_decomposition(&g);
        let plot = kappa_density_plot(&g, &d);
        assert_eq!(plot.values, vec![3, 3, 3, 0, 0]);
    }

    #[test]
    fn deterministic_ordering() {
        let g = generators::gnp(40, 0.1, 8);
        let d = triangle_kcore_decomposition(&g);
        let a = kappa_density_plot(&g, &d);
        let b = kappa_density_plot(&g, &d);
        assert_eq!(a, b);
    }

    #[test]
    fn positions_and_value_lookup_roundtrip() {
        let (g, plot) = two_cliques_plot();
        let pos = plot.positions(g.num_vertices());
        for (i, v) in plot.order.iter().enumerate() {
            assert_eq!(pos[v.index()], i);
        }
        let byv = plot.value_by_vertex(g.num_vertices());
        for (i, v) in plot.order.iter().enumerate() {
            assert_eq!(byv[v.index()], plot.values[i]);
        }
    }

    #[test]
    fn pearson_edge_cases() {
        assert_eq!(pearson(&[], &[]), 1.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 2.0]), 0.0);
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_value_sources_give_similarity_one() {
        let (g, plot) = two_cliques_plot();
        assert!((plot_similarity(&plot, &plot, g.num_vertices()) - 1.0).abs() < 1e-12);
    }
}
