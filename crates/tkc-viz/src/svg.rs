//! A tiny dependency-free SVG document builder — just enough for the
//! density plots, dual views and subgraph drawings the suite emits.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDocument {
    width: u32,
    height: u32,
    body: String,
}

impl SvgDocument {
    /// Creates an empty document of the given pixel size.
    pub fn new(width: u32, height: u32) -> Self {
        SvgDocument {
            width,
            height,
            body: String::new(),
        }
    }

    /// Filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) -> &mut Self {
        writeln!(
            self.body,
            r#"  <rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"/>"#
        )
        .expect("String writes are infallible");
        self
    }

    /// Circle outline or fill.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, stroke: &str) -> &mut Self {
        writeln!(
            self.body,
            r#"  <circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}" stroke="{stroke}"/>"#
        )
        .expect("String writes are infallible");
        self
    }

    /// Straight line segment.
    pub fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        width: f64,
    ) -> &mut Self {
        writeln!(
            self.body,
            r#"  <line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"#
        )
        .expect("String writes are infallible");
        self
    }

    /// Open polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) -> &mut Self {
        let mut pts = String::new();
        for &(x, y) in points {
            write!(pts, "{x:.2},{y:.2} ").expect("String writes are infallible");
        }
        writeln!(
            self.body,
            r#"  <polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width:.2}"/>"#,
            pts.trim_end()
        )
        .expect("String writes are infallible");
        self
    }

    /// Text label anchored at its start.
    pub fn text(&mut self, x: f64, y: f64, size: u32, fill: &str, content: &str) -> &mut Self {
        writeln!(
            self.body,
            r#"  <text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" fill="{fill}">{}</text>"#,
            escape(content)
        )
        .expect("String writes are infallible");
        self
    }

    /// Serializes the document.
    pub fn finish(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }

    /// Writes the document to a file.
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.finish())
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn builds_well_formed_document() {
        let mut doc = SvgDocument::new(100, 50);
        doc.rect(0.0, 0.0, 100.0, 50.0, "#ffffff")
            .circle(10.0, 10.0, 3.0, "red", "none")
            .line(0.0, 0.0, 100.0, 50.0, "#333", 1.0)
            .polyline(&[(0.0, 0.0), (5.0, 5.0)], "blue", 0.5)
            .text(2.0, 12.0, 10, "#000", "κ < 3 & more");
        let s = doc.finish();
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert!(s.contains("&lt; 3 &amp; more"));
        assert_eq!(s.matches("<rect").count(), 1);
        assert_eq!(s.matches("<circle").count(), 1);
    }

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("tkc_svg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.svg");
        let doc = SvgDocument::new(10, 10);
        doc.save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("viewBox=\"0 0 10 10\""));
        std::fs::remove_file(path).ok();
    }
}
