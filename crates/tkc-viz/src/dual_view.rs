//! Dual View Plots — Algorithm 3 of the paper.
//!
//! plot(a) shows the clique distribution of the original graph; after a
//! batch of edge additions, plot(b) shows only the *changed* cliques (new
//! edges carry their fresh `κ+2`, untouched edges are zeroed, step 5).
//! Correspondence markers tie the densest changed structures in plot(b)
//! back to the positions of the same vertices in plot(a), giving the
//! "cognitive correspondence" of the Wiki case study (Figure 8).

use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::dynamic::DynamicTriangleKCore;
use tkc_graph::components::{edge_set_vertices, triangle_connected_components};
use tkc_graph::{EdgeId, Graph, VertexId};

use crate::ordering::{density_order, DensityPlot};
use crate::plot::{draw_series, PlotMarker, PlotStyle};
use crate::svg::SvgDocument;

/// One highlighted changed structure, located in both plots.
#[derive(Debug, Clone)]
pub struct CorrespondenceMarker {
    /// Marker color (cycled from a fixed palette).
    pub color: String,
    /// κ level of the structure in the *new* graph.
    pub level: u32,
    /// Its vertices.
    pub vertices: Vec<VertexId>,
    /// Positions of those vertices in plot(a).
    pub before_positions: Vec<usize>,
    /// Positions in plot(b).
    pub after_positions: Vec<usize>,
}

/// The two plots plus correspondence markers.
#[derive(Debug, Clone)]
pub struct DualView {
    /// plot(a): the original graph's clique distribution.
    pub before: DensityPlot,
    /// plot(b): changed cliques only.
    pub after: DensityPlot,
    /// The top changed structures, located in both plots.
    pub markers: Vec<CorrespondenceMarker>,
    /// Edge ids of the added edges in the updated graph.
    pub added_edges: Vec<EdgeId>,
}

const PALETTE: [&str; 6] = [
    "#16a34a", // green triangle of Fig 8
    "#dc2626", // red rectangle
    "#f59e0b", // orange ellipse
    "#7c3aed", "#0891b2", "#be185d",
];

/// Runs Algorithm 3: decompose `old`, apply `additions` incrementally,
/// plot both views and mark the `top_k` densest changed structures.
///
/// Additions referencing equal endpoints, unknown vertices or existing
/// edges are skipped (mirroring the tolerant snapshot-diff setting of the
/// Wiki study).
pub fn dual_view(old: &Graph, additions: &[(VertexId, VertexId)], top_k: usize) -> DualView {
    // Step 1-3: κ and plot(a) for the original graph.
    let d_old = triangle_kcore_decomposition(old);
    let before = {
        let mut vals = vec![0u32; old.edge_bound()];
        for e in old.edge_ids() {
            vals[e.index()] = d_old.kappa(e) + 2;
        }
        density_order(old, &vals)
    };

    // Step 4: incremental update.
    let mut maintainer = DynamicTriangleKCore::from_parts(old.clone(), d_old.into_kappa());
    let mut added: Vec<EdgeId> = Vec::new();
    for &(u, v) in additions {
        if u != v
            && maintainer.graph().contains_vertex(u)
            && maintainer.graph().contains_vertex(v)
            && !maintainer.graph().has_edge(u, v)
        {
            added.push(maintainer.insert_edge(u, v).expect("validated insert"));
        }
    }
    let g2 = maintainer.graph();

    // Step 5-6: plot(b) from changed edges only.
    let mut changed = vec![0u32; g2.edge_bound()];
    for &e in &added {
        changed[e.index()] = maintainer.kappa(e) + 2;
    }
    let after = density_order(g2, &changed);

    // Step 7: locate the densest changed structures. A changed structure
    // is a triangle-connected core (at the level of an added edge) that
    // contains at least one added edge.
    let mut markers = Vec::new();
    let mut levels: Vec<u32> = added.iter().map(|&e| maintainer.kappa(e)).collect();
    levels.sort_unstable_by(|a, b| b.cmp(a));
    levels.dedup();
    let added_set: tkc_graph::FxHashSet<EdgeId> = added.iter().copied().collect();
    'outer: for k in levels {
        if k == 0 {
            break;
        }
        let comps = triangle_connected_components(g2, |e| maintainer.kappa(e) >= k);
        // Densest-first within a level: larger components first.
        let mut comps: Vec<_> = comps
            .into_iter()
            .filter(|edges| edges.iter().any(|e| added_set.contains(e)))
            .collect();
        comps.sort_by_key(|edges| std::cmp::Reverse(edges.len()));
        for edges in comps {
            let vertices = edge_set_vertices(g2, &edges);
            // Skip structures already covered by a denser marker.
            if markers
                .iter()
                .any(|m: &CorrespondenceMarker| vertices.iter().all(|v| m.vertices.contains(v)))
            {
                continue;
            }
            let before_pos = before.positions(old.num_vertices());
            let after_pos = after.positions(g2.num_vertices());
            markers.push(CorrespondenceMarker {
                color: PALETTE[markers.len() % PALETTE.len()].to_string(),
                level: k,
                before_positions: vertices
                    .iter()
                    .filter_map(|v| before_pos.get(v.index()).copied())
                    .filter(|&p| p != usize::MAX)
                    .collect(),
                after_positions: vertices
                    .iter()
                    .filter_map(|v| after_pos.get(v.index()).copied())
                    .filter(|&p| p != usize::MAX)
                    .collect(),
                vertices,
            });
            if markers.len() >= top_k {
                break 'outer;
            }
        }
    }

    DualView {
        before,
        after,
        markers,
        added_edges: added,
    }
}

/// Renders the dual view as one SVG with plot(a) above plot(b) and the
/// correspondence markers drawn in both bands.
pub fn render_dual_view(view: &DualView, width: u32, band_height: u32) -> String {
    let mut doc = SvgDocument::new(width, band_height * 2);
    let style_a = PlotStyle {
        width,
        height: band_height,
        color: "#2563eb".into(),
        title: "plot(a): original graph".into(),
    };
    let style_b = PlotStyle {
        width,
        height: band_height,
        color: "#475569".into(),
        title: "plot(b): changed cliques".into(),
    };
    let mk = |positions: &dyn Fn(&CorrespondenceMarker) -> Vec<usize>| -> Vec<PlotMarker> {
        view.markers
            .iter()
            .map(|m| PlotMarker {
                positions: positions(m),
                color: m.color.clone(),
                label: format!("κ={} ({}v)", m.level, m.vertices.len()),
            })
            .collect()
    };
    let markers_a = mk(&|m: &CorrespondenceMarker| m.before_positions.clone());
    let markers_b = mk(&|m: &CorrespondenceMarker| m.after_positions.clone());
    draw_series(
        &mut doc,
        &view.before,
        &style_a,
        0.0,
        band_height as f64,
        &markers_a,
    );
    draw_series(
        &mut doc,
        &view.after,
        &style_b,
        band_height as f64,
        band_height as f64,
        &markers_b,
    );
    doc.finish()
}

/// Machine-readable marker table: one row per (marker, vertex) with both
/// plot positions, for downstream analysis of correspondence.
pub fn marker_table_tsv(view: &DualView) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("marker\tlevel\tcolor\tvertex\tpos_before\tpos_after\n");
    for (i, m) in view.markers.iter().enumerate() {
        for (j, v) in m.vertices.iter().enumerate() {
            let pb = m
                .before_positions
                .get(j)
                .map(|p| p.to_string())
                .unwrap_or_default();
            let pa = m
                .after_positions
                .get(j)
                .map(|p| p.to_string())
                .unwrap_or_default();
            writeln!(out, "{i}\t{}\t{}\t{v}\t{pb}\t{pa}", m.level, m.color)
                .expect("String writes are infallible");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::generators;

    /// The Wiki-style scenario: a 5-clique grows into a 6-clique via a new
    /// vertex... reduced: planted cliques merge through added edges.
    fn scenario() -> (Graph, Vec<(VertexId, VertexId)>) {
        // Old graph: K5 on 0..5, K4 on 5..9, background noise.
        let mut g = generators::gnp(20, 0.05, 3);
        let k5: Vec<VertexId> = (0..5u32).map(VertexId).collect();
        let k4: Vec<VertexId> = (5..9u32).map(VertexId).collect();
        generators::plant_clique(&mut g, &k5);
        generators::plant_clique(&mut g, &k4);
        // Additions: vertex 9 joins the K5 completely (forming K6), and the
        // two cliques get bridged.
        let mut adds = vec![];
        for i in 0..5u32 {
            adds.push((VertexId(i), VertexId(9)));
        }
        adds.push((VertexId(0), VertexId(5)));
        (g, adds)
    }

    #[test]
    fn plots_cover_both_snapshots() {
        let (g, adds) = scenario();
        let view = dual_view(&g, &adds, 3);
        assert_eq!(view.before.len(), g.num_vertices());
        assert_eq!(view.after.len(), g.num_vertices());
        assert_eq!(view.added_edges.len(), adds.len());
    }

    #[test]
    fn changed_plot_zeroes_untouched_edges() {
        let (g, adds) = scenario();
        let view = dual_view(&g, &adds, 3);
        // The new 6-clique dominates plot(b): its peak is κ+2 = 6.
        assert_eq!(view.after.max_value(), 6);
        // plot(a) has the K5 peak of 5.
        assert!(view.before.max_value() >= 5);
    }

    #[test]
    fn top_marker_is_the_grown_clique() {
        let (g, adds) = scenario();
        let view = dual_view(&g, &adds, 2);
        assert!(!view.markers.is_empty());
        let top = &view.markers[0];
        assert_eq!(top.level, 4); // K6 → κ = 4
        for i in 0..5u32 {
            assert!(top.vertices.contains(&VertexId(i)));
        }
        assert!(top.vertices.contains(&VertexId(9)));
        assert_eq!(top.before_positions.len(), top.vertices.len());
    }

    #[test]
    fn duplicate_and_bogus_additions_are_skipped() {
        let g = generators::complete(4);
        let adds = vec![
            (VertexId(0), VertexId(1)), // duplicate
            (VertexId(2), VertexId(2)), // self loop
        ];
        let view = dual_view(&g, &adds, 2);
        assert!(view.added_edges.is_empty());
        assert!(view.markers.is_empty());
    }

    #[test]
    fn svg_and_tsv_render() {
        let (g, adds) = scenario();
        let view = dual_view(&g, &adds, 3);
        let svg = render_dual_view(&view, 800, 240);
        assert!(svg.contains("plot(a)"));
        assert!(svg.contains("plot(b)"));
        let tsv = marker_table_tsv(&view);
        assert!(tsv.lines().count() > view.markers.len());
        assert!(tsv.starts_with("marker\t"));
    }
}
