//! # tkc-viz — density plots and dual views for Triangle K-Core analysis
//!
//! The visual-analytic layer of the paper (§V): CSV/OPTICS-style density
//! plots driven by the `κ(e) + 2` co-clique proxy, dual-view plots with
//! cognitive correspondence for evolving graphs (Algorithm 3), and
//! dependency-free SVG / TSV / ASCII renderers.
//!
//! ```
//! use tkc_graph::generators;
//! use tkc_core::decompose::triangle_kcore_decomposition;
//! use tkc_viz::ordering::kappa_density_plot;
//! use tkc_viz::plot::ascii_sparkline;
//!
//! let g = generators::connected_caveman(4, 6);
//! let d = triangle_kcore_decomposition(&g);
//! let plot = kappa_density_plot(&g, &d);
//! // Four dense caves → four plateaus.
//! println!("{}", ascii_sparkline(&plot, 40));
//! assert_eq!(plot.max_value(), 6);
//! ```

// Plot-construction crate: ordering/density walks index freshly-built
// vectors; output is SVG/TSV for offline inspection, not a serving path.
// See DESIGN.md §11.
#![allow(clippy::indexing_slicing, clippy::expect_used)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distribution;
pub mod dual_view;
pub mod ordering;
pub mod plot;
pub mod subgraph;
pub mod svg;

pub use distribution::{distribution_tsv, kappa_ccdf, render_kappa_histogram};
pub use dual_view::{dual_view, DualView};
pub use ordering::{density_order, kappa_density_plot, plot_similarity, DensityPlot};
pub use plot::{ascii_sparkline, density_plot_tsv, render_density_plot, PlotStyle};
pub use subgraph::{render_structure, render_subgraph, EdgeClass};
