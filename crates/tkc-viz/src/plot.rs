//! Renderers for [`DensityPlot`]s: SVG for reports, TSV for downstream
//! tooling, and an ASCII preview for terminals.

use std::fmt::Write as _;

use crate::ordering::DensityPlot;
use crate::svg::SvgDocument;

/// Visual style knobs for the SVG renderer.
#[derive(Debug, Clone)]
pub struct PlotStyle {
    /// Total pixel width.
    pub width: u32,
    /// Total pixel height.
    pub height: u32,
    /// Series color.
    pub color: String,
    /// Plot title drawn in the top-left corner.
    pub title: String,
}

impl Default for PlotStyle {
    fn default() -> Self {
        PlotStyle {
            width: 900,
            height: 260,
            color: "#2563eb".to_string(),
            title: String::new(),
        }
    }
}

const MARGIN_L: f64 = 42.0;
const MARGIN_R: f64 = 10.0;
const MARGIN_T: f64 = 24.0;
const MARGIN_B: f64 = 24.0;

/// Draws one density plot series into a fresh SVG document.
pub fn render_density_plot(plot: &DensityPlot, style: &PlotStyle) -> String {
    let mut doc = SvgDocument::new(style.width, style.height);
    draw_series(&mut doc, plot, style, 0.0, style.height as f64, &[]);
    doc.finish()
}

/// A correspondence marker: a set of plot positions highlighted with a
/// shared color (the green triangle / red rectangle / orange ellipse of
/// Figure 8, reduced to colored dots).
#[derive(Debug, Clone)]
pub struct PlotMarker {
    /// X positions (plot order indices) to highlight.
    pub positions: Vec<usize>,
    /// CSS color of the marker.
    pub color: String,
    /// Legend label.
    pub label: String,
}

/// Internal: draws one series into the vertical band `[y0, y0+band_h)` of
/// an existing document, with optional markers.
pub(crate) fn draw_series(
    doc: &mut SvgDocument,
    plot: &DensityPlot,
    style: &PlotStyle,
    y0: f64,
    band_h: f64,
    markers: &[PlotMarker],
) {
    let w = style.width as f64;
    let inner_w = w - MARGIN_L - MARGIN_R;
    let inner_h = band_h - MARGIN_T - MARGIN_B;
    let max_v = plot.max_value().max(1) as f64;
    let n = plot.len().max(1) as f64;

    let x_of = |i: usize| MARGIN_L + inner_w * (i as f64) / n;
    let y_of = |v: u32| y0 + MARGIN_T + inner_h * (1.0 - v as f64 / max_v);

    // Frame and axis labels.
    doc.rect(0.0, y0, w, band_h, "#ffffff");
    doc.line(
        MARGIN_L,
        y0 + MARGIN_T,
        MARGIN_L,
        y0 + band_h - MARGIN_B,
        "#888888",
        1.0,
    );
    doc.line(
        MARGIN_L,
        y0 + band_h - MARGIN_B,
        w - MARGIN_R,
        y0 + band_h - MARGIN_B,
        "#888888",
        1.0,
    );
    doc.text(
        4.0,
        y0 + MARGIN_T + 4.0,
        10,
        "#444444",
        &format!("{}", plot.max_value()),
    );
    doc.text(4.0, y0 + band_h - MARGIN_B, 10, "#444444", "0");
    if !style.title.is_empty() {
        doc.text(MARGIN_L, y0 + 14.0, 12, "#111111", &style.title);
    }

    // The series itself: vertical bars read better than a polyline for the
    // spiky CSV-style plots at high vertex counts.
    if plot.len() <= 2000 {
        for (i, &v) in plot.values.iter().enumerate() {
            let x = x_of(i);
            doc.line(
                x,
                y_of(0),
                x,
                y_of(v),
                &style.color,
                (inner_w / n).clamp(0.4, 3.0),
            );
        }
    } else {
        let pts: Vec<(f64, f64)> = plot
            .values
            .iter()
            .enumerate()
            .map(|(i, &v)| (x_of(i), y_of(v)))
            .collect();
        doc.polyline(&pts, &style.color, 0.8);
    }

    // Markers on top.
    for m in markers {
        for &p in &m.positions {
            if p < plot.len() {
                doc.circle(x_of(p), y_of(plot.values[p]) - 3.0, 3.0, &m.color, "none");
            }
        }
    }
    // Marker legend.
    let mut lx = MARGIN_L + 60.0;
    for m in markers {
        doc.circle(lx, y0 + 10.0, 3.5, &m.color, "none");
        doc.text(lx + 6.0, y0 + 14.0, 10, "#333333", &m.label);
        lx += 12.0 + 7.0 * m.label.len() as f64;
    }
}

/// Renders two plots stacked in one SVG (e.g. a baseline's series above
/// the Triangle K-Core proxy for the Figure 6 comparison).
pub fn draw_series_pair(
    top: &DensityPlot,
    bottom: &DensityPlot,
    top_title: &str,
    bottom_title: &str,
    width: u32,
    band_height: u32,
) -> String {
    let mut doc = SvgDocument::new(width, band_height * 2);
    let style_top = PlotStyle {
        width,
        height: band_height,
        color: "#dc2626".into(),
        title: top_title.to_string(),
    };
    let style_bottom = PlotStyle {
        width,
        height: band_height,
        color: "#2563eb".into(),
        title: bottom_title.to_string(),
    };
    draw_series(&mut doc, top, &style_top, 0.0, band_height as f64, &[]);
    draw_series(
        &mut doc,
        bottom,
        &style_bottom,
        band_height as f64,
        band_height as f64,
        &[],
    );
    doc.finish()
}

/// Serializes a plot as TSV: `position  vertex  value`.
pub fn density_plot_tsv(plot: &DensityPlot) -> String {
    let mut out = String::with_capacity(plot.len() * 12 + 24);
    out.push_str("position\tvertex\tvalue\n");
    for (i, (&v, &val)) in plot.order.iter().zip(&plot.values).enumerate() {
        writeln!(out, "{i}\t{v}\t{val}").expect("String writes are infallible");
    }
    out
}

/// Compact terminal preview: buckets the series into `width` columns and
/// draws each column's max with eight-level block characters.
pub fn ascii_sparkline(plot: &DensityPlot, width: usize) -> String {
    const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if plot.is_empty() || width == 0 {
        return String::new();
    }
    let max_v = plot.max_value().max(1);
    let cols = width.min(plot.len());
    let mut out = String::with_capacity(cols * 3);
    for c in 0..cols {
        let lo = c * plot.len() / cols;
        let hi = ((c + 1) * plot.len() / cols).max(lo + 1);
        let peak = plot.values[lo..hi].iter().copied().max().unwrap_or(0);
        let idx = (peak as usize * 8).div_ceil(max_v as usize);
        out.push(BLOCKS[idx.min(8)]);
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::VertexId;

    fn sample_plot() -> DensityPlot {
        DensityPlot {
            order: (0..8u32).map(VertexId).collect(),
            values: vec![6, 6, 6, 2, 4, 4, 4, 0],
        }
    }

    #[test]
    fn svg_contains_series_and_title() {
        let style = PlotStyle {
            title: "PPI".into(),
            ..PlotStyle::default()
        };
        let svg = render_density_plot(&sample_plot(), &style);
        assert!(svg.contains("PPI"));
        assert!(svg.matches("<line").count() >= 8); // axes + bars
    }

    #[test]
    fn svg_switches_to_polyline_for_large_plots() {
        let big = DensityPlot {
            order: (0..3000u32).map(VertexId).collect(),
            values: (0..3000u32).map(|i| i % 7).collect(),
        };
        let svg = render_density_plot(&big, &PlotStyle::default());
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let tsv = density_plot_tsv(&sample_plot());
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 9);
        assert_eq!(lines[0], "position\tvertex\tvalue");
        assert_eq!(lines[1], "0\t0\t6");
        assert_eq!(lines[8], "7\t7\t0");
    }

    #[test]
    fn sparkline_peaks_where_values_peak() {
        let s = ascii_sparkline(&sample_plot(), 8);
        assert_eq!(s.chars().count(), 8);
        assert_eq!(s.chars().next().unwrap(), '█');
        assert_eq!(s.chars().last().unwrap(), ' ');
    }

    #[test]
    fn sparkline_handles_degenerate_inputs() {
        assert_eq!(ascii_sparkline(&sample_plot(), 0), "");
        let empty = DensityPlot {
            order: vec![],
            values: vec![],
        };
        assert_eq!(ascii_sparkline(&empty, 10), "");
    }
}
