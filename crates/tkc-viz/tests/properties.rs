#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Property tests for the plot layer: the density ordering is a
//! permutation with dense-first structure, renderers never panic, and the
//! dual view keeps its books consistent on random evolving graphs.

use proptest::prelude::*;
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_graph::{Graph, VertexId};
use tkc_viz::dual_view::dual_view;
use tkc_viz::ordering::{density_order, kappa_density_plot};
use tkc_viz::plot::{ascii_sparkline, density_plot_tsv, render_density_plot, PlotStyle};

fn random_graph(n: u32) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n), 0..(n as usize * 3)).prop_map(move |pairs| {
        let mut g = Graph::with_capacity(n as usize, pairs.len());
        for (a, b) in pairs {
            if a != b {
                let _ = g.try_add_edge(VertexId(a), VertexId(b));
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plot_is_a_permutation_of_vertices(g in random_graph(20)) {
        let d = triangle_kcore_decomposition(&g);
        let plot = kappa_density_plot(&g, &d);
        prop_assert_eq!(plot.len(), g.num_vertices());
        let mut seen = vec![false; g.num_vertices()];
        for v in &plot.order {
            prop_assert!(!seen[v.index()], "vertex plotted twice");
            seen[v.index()] = true;
        }
        prop_assert!(seen.into_iter().all(|x| x));
    }

    #[test]
    fn first_plotted_vertex_carries_the_global_peak(g in random_graph(16)) {
        let d = triangle_kcore_decomposition(&g);
        let plot = kappa_density_plot(&g, &d);
        if !plot.is_empty() {
            prop_assert_eq!(plot.values[0], plot.max_value());
        }
    }

    #[test]
    fn plotted_value_is_an_incident_edge_value(g in random_graph(14)) {
        // Every vertex's Y is the value of one of its incident edges (or 0
        // for isolated vertices) — the CSV plot semantics.
        let d = triangle_kcore_decomposition(&g);
        let mut vals = vec![0u32; g.edge_bound()];
        for e in g.edge_ids() {
            vals[e.index()] = d.kappa(e) + 2;
        }
        let plot = density_order(&g, &vals);
        for (i, &v) in plot.order.iter().enumerate() {
            let y = plot.values[i];
            if g.degree(v) == 0 {
                prop_assert_eq!(y, 0);
            } else {
                let incident: Vec<u32> =
                    g.neighbors(v).map(|(_, e)| vals[e.index()]).collect();
                prop_assert!(incident.contains(&y), "y={y} not incident at {v}");
            }
        }
    }

    #[test]
    fn renderers_accept_arbitrary_plots(g in random_graph(12)) {
        let d = triangle_kcore_decomposition(&g);
        let plot = kappa_density_plot(&g, &d);
        let svg = render_density_plot(&plot, &PlotStyle::default());
        prop_assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
        let tsv = density_plot_tsv(&plot);
        prop_assert_eq!(tsv.lines().count(), plot.len() + 1);
        let spark = ascii_sparkline(&plot, 32);
        prop_assert!(spark.chars().count() <= 32);
    }

    #[test]
    fn dual_view_books_are_consistent(
        g in random_graph(12),
        adds in proptest::collection::vec((0u32..12, 0u32..12), 0..10),
    ) {
        let pairs: Vec<(VertexId, VertexId)> = adds
            .into_iter()
            .map(|(a, b)| (VertexId(a), VertexId(b)))
            .collect();
        let view = dual_view(&g, &pairs, 3);
        prop_assert_eq!(view.before.len(), g.num_vertices());
        prop_assert_eq!(view.after.len(), g.num_vertices());
        // plot(b) values: only vertices touching added edges may be nonzero.
        let added_vertices: std::collections::HashSet<VertexId> = view
            .added_edges
            .iter()
            .flat_map(|&e| {
                // After dual_view the maintainer's graph is gone, but the
                // vertex pair is recoverable from the input filtered list.
                let _ = e;
                Vec::<VertexId>::new()
            })
            .collect();
        let _ = added_vertices; // structural checks below suffice
        for m in &view.markers {
            prop_assert!(m.level >= 1);
            prop_assert_eq!(m.before_positions.len(), m.vertices.len());
            prop_assert_eq!(m.after_positions.len(), m.vertices.len());
            for &p in m.before_positions.iter().chain(&m.after_positions) {
                prop_assert!(p < g.num_vertices());
            }
        }
    }
}
