#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Property tests for the core algorithms:
//!
//! * Algorithm 1 against the definitional iterated-pruning oracle;
//! * the dynamic maintainer against a from-scratch recompute after every
//!   operation of random edit scripts;
//! * structural theorems from the paper (Theorem 1, clique equivalence,
//!   the κ/core-number bound).

use proptest::prelude::*;
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::dynamic::DynamicTriangleKCore;
use tkc_core::extract::{cores_at_level, maximum_core_of_edge};
use tkc_core::kcore::core_numbers;
use tkc_core::reference::{is_triangle_kcore, naive_kappa};
use tkc_graph::{Graph, VertexId};

#[derive(Debug, Clone)]
enum Op {
    Add(u32, u32),
    Remove(u32, u32),
}

fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    (0..n, 0..n, any::<bool>())
        .prop_map(|(a, b, add)| if add { Op::Add(a, b) } else { Op::Remove(a, b) })
}

fn random_graph(n: u32) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n), 0..(n as usize * 3)).prop_map(move |pairs| {
        let mut g = Graph::with_capacity(n as usize, pairs.len());
        for (a, b) in pairs {
            if a != b {
                let _ = g.try_add_edge(VertexId(a), VertexId(b));
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn peeling_matches_naive_oracle(g in random_graph(14)) {
        let naive = naive_kappa(&g);
        let d = triangle_kcore_decomposition(&g);
        for e in g.edge_ids() {
            prop_assert_eq!(naive[e.index()], d.kappa(e));
        }
    }

    #[test]
    fn processing_order_is_monotone_in_kappa(g in random_graph(16)) {
        let d = triangle_kcore_decomposition(&g);
        let ks: Vec<u32> = d.order().iter().map(|&e| d.kappa(e)).collect();
        prop_assert!(ks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dynamic_matches_static_after_every_op(
        init in random_graph(10),
        ops in proptest::collection::vec(op_strategy(10), 1..40),
    ) {
        let mut dynamic = DynamicTriangleKCore::new(init);
        for op in &ops {
            match *op {
                Op::Add(a, b) => {
                    if a != b && !dynamic.graph().has_edge(VertexId(a), VertexId(b)) {
                        dynamic.insert_edge(VertexId(a), VertexId(b)).unwrap();
                    }
                }
                Op::Remove(a, b) => {
                    let _ = dynamic.remove_edge_between(VertexId(a), VertexId(b));
                }
            }
            let fresh = triangle_kcore_decomposition(dynamic.graph());
            for e in dynamic.graph().edge_ids() {
                prop_assert_eq!(
                    dynamic.kappa(e),
                    fresh.kappa(e),
                    "after {:?} on edge {:?}", op, dynamic.graph().endpoints(e)
                );
            }
        }
    }

    #[test]
    fn theorem_1_inside_every_maximum_core(g in random_graph(12)) {
        let d = triangle_kcore_decomposition(&g);
        for e in g.edge_ids() {
            if let Some(core) = maximum_core_of_edge(&g, &d, e) {
                // The extracted core must actually satisfy Definition 3.
                prop_assert!(is_triangle_kcore(&g, &core.edges, d.kappa(e)));
                let set: std::collections::HashSet<_> = core.edges.iter().copied().collect();
                g.for_each_triangle_on_edge(e, |_, e1, e2| {
                    if set.contains(&e1) && set.contains(&e2) {
                        assert!(d.kappa(e1) >= d.kappa(e), "theorem 1 violated");
                        assert!(d.kappa(e2) >= d.kappa(e), "theorem 1 violated");
                    }
                });
            }
        }
    }

    #[test]
    fn kappa_bounded_by_core_numbers(g in random_graph(14)) {
        // Inside a Triangle K-Core of number k every vertex has degree
        // >= k+1, so κ(e) <= min(core(u), core(v)) - 1 for any edge.
        let d = triangle_kcore_decomposition(&g);
        let core = core_numbers(&g);
        for (e, u, v) in g.edges() {
            let bound = core[u.index()].min(core[v.index()]);
            prop_assert!(d.kappa(e) < bound || (d.kappa(e) == 0 && bound == 0));
        }
    }

    #[test]
    fn planted_clique_reaches_full_kappa(extra in random_graph(12), size in 4u32..8) {
        // Plant a clique on fresh vertices: its edges must reach κ >= size-2
        // no matter what surrounds them.
        let mut g = extra;
        let base = g.num_vertices() as u32;
        g.add_vertices(size as usize);
        for i in 0..size {
            for j in (i + 1)..size {
                g.add_edge(VertexId(base + i), VertexId(base + j)).unwrap();
            }
        }
        let d = triangle_kcore_decomposition(&g);
        for i in 0..size {
            for j in (i + 1)..size {
                let e = g.edge_between(VertexId(base + i), VertexId(base + j)).unwrap();
                prop_assert!(d.kappa(e) >= size - 2);
            }
        }
    }

    #[test]
    fn level_sets_satisfy_definition(g in random_graph(13)) {
        let d = triangle_kcore_decomposition(&g);
        for k in 1..=d.max_kappa() {
            for core in cores_at_level(&g, &d, k) {
                prop_assert!(is_triangle_kcore(&g, &core.edges, k));
            }
        }
    }

    #[test]
    fn global_max_clique_bounded_by_max_kappa(g in random_graph(13)) {
        // Every maximal clique of size s implies κ >= s-2 on its edges, so
        // the largest clique is at most max κ + 2 — and the bound is tight
        // when the densest structure is an actual clique.
        let d = triangle_kcore_decomposition(&g);
        let cliques = tkc_graph::cliques::maximal_cliques(&g, 3);
        let max_clique = cliques.iter().map(|c| c.len()).max().unwrap_or(0);
        if max_clique >= 3 {
            prop_assert!(max_clique as u32 <= d.max_kappa() + 2);
            // Edges inside the max clique carry κ >= size - 2.
            let best = cliques.iter().max_by_key(|c| c.len()).unwrap();
            for (i, &u) in best.iter().enumerate() {
                for &v in &best[i + 1..] {
                    let e = g.edge_between(u, v).unwrap();
                    prop_assert!(d.kappa(e) + 2 >= best.len() as u32);
                }
            }
        }
    }

    #[test]
    fn pure_deletion_stream_matches_static(
        init in random_graph(12),
        picks in proptest::collection::vec(0usize..64, 1..30),
    ) {
        // Deletion-only stress: starting from a random graph, remove a
        // random live edge at a time (picks index into the shrinking live
        // set) and require exact agreement with a from-scratch Algorithm 1
        // run after every removal — the demote cascade gets no help from
        // intervening insertions here.
        let mut dynamic = DynamicTriangleKCore::new(init);
        for &pick in &picks {
            let live: Vec<_> = dynamic.graph().edge_ids().collect();
            if live.is_empty() {
                break;
            }
            let victim = live[pick % live.len()];
            let (u, v) = dynamic.graph().endpoints(victim);
            dynamic.remove_edge(victim).unwrap();
            let fresh = triangle_kcore_decomposition(dynamic.graph());
            for e in dynamic.graph().edge_ids() {
                prop_assert_eq!(
                    dynamic.kappa(e),
                    fresh.kappa(e),
                    "after deleting ({u}, {v}), edge {:?} diverged",
                    dynamic.graph().endpoints(e)
                );
            }
        }
        // Dead slots must read κ = 0 (the certificate checker relies on it).
        let live: std::collections::HashSet<_> =
            dynamic.graph().edge_ids().collect();
        for (i, &k) in dynamic.kappa_slice().iter().enumerate() {
            if !live.contains(&tkc_graph::EdgeId::from(i)) {
                prop_assert_eq!(k, 0, "dead slot {i} holds stale kappa");
            }
        }
    }

    #[test]
    fn batch_and_singles_agree(
        init in random_graph(9),
        ops in proptest::collection::vec(op_strategy(9), 0..20),
    ) {
        use tkc_core::dynamic::BatchOp;
        let mut one_by_one = DynamicTriangleKCore::new(init.clone());
        let mut batched = DynamicTriangleKCore::new(init);
        let batch: Vec<BatchOp> = ops
            .iter()
            .map(|op| match *op {
                Op::Add(a, b) => BatchOp::Insert(VertexId(a), VertexId(b)),
                Op::Remove(a, b) => BatchOp::Remove(VertexId(a), VertexId(b)),
            })
            .collect();
        batched.apply_batch(batch);
        for op in &ops {
            match *op {
                Op::Add(a, b) => {
                    if a != b && !one_by_one.graph().has_edge(VertexId(a), VertexId(b)) {
                        one_by_one.insert_edge(VertexId(a), VertexId(b)).unwrap();
                    }
                }
                Op::Remove(a, b) => {
                    let _ = one_by_one.remove_edge_between(VertexId(a), VertexId(b));
                }
            }
        }
        prop_assert_eq!(one_by_one.graph().num_edges(), batched.graph().num_edges());
        for e in one_by_one.graph().edge_ids() {
            prop_assert_eq!(one_by_one.kappa(e), batched.kappa(e));
        }
    }
}
