#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Property tests for the level-synchronous parallel peel
//! ([`tkc_core::peel_parallel`]): for random graphs — including graphs
//! with dead edge slots left by deletions — and every thread count 1–8,
//! the parallel peel must reproduce the sequential bucket peel's κ
//! vector and max κ bit-for-bit, and its processing order must satisfy
//! the peel-order invariants (monotone κ, a permutation of the live
//! edges) and be identical across every thread count and both triangle
//! lookup strategies.

use proptest::prelude::*;
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::peel_parallel::{triangle_kcore_decomposition_parallel_lookup, TriangleLookup};
use tkc_graph::{EdgeId, Graph, VertexId};

/// Random graph with optional churn: build from random pairs, then
/// delete a sample of edges so the edge-id space contains dead slots —
/// the parallel peel indexes per-edge arrays by raw id and must not be
/// confused by holes.
fn churned_graph(n: u32) -> impl Strategy<Value = Graph> {
    (
        proptest::collection::vec((0..n, 0..n), 0..(n as usize * 3)),
        proptest::collection::vec(0usize..64, 0..12),
    )
        .prop_map(move |(pairs, deletions)| {
            let mut g = Graph::with_capacity(n as usize, pairs.len());
            for (a, b) in pairs {
                if a != b {
                    let _ = g.try_add_edge(VertexId(a), VertexId(b));
                }
            }
            for pick in deletions {
                let live: Vec<EdgeId> = g.edge_ids().collect();
                if live.is_empty() {
                    break;
                }
                g.remove_edge(live[pick % live.len()]).unwrap();
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn parallel_kappa_is_bit_identical_to_sequential(g in churned_graph(16)) {
        let seq = triangle_kcore_decomposition(&g);
        for lookup in [TriangleLookup::Auto, TriangleLookup::Stored, TriangleLookup::Merge] {
            for threads in 1usize..=8 {
                let par = triangle_kcore_decomposition_parallel_lookup(&g, threads, lookup);
                prop_assert_eq!(par.max_kappa(), seq.max_kappa());
                for e in g.edge_ids() {
                    prop_assert_eq!(
                        par.kappa(e), seq.kappa(e),
                        "κ diverged at {:?} ({:?}, {threads} threads)",
                        g.endpoints(e), lookup
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_order_is_a_monotone_permutation_of_live_edges(g in churned_graph(16)) {
        let par = triangle_kcore_decomposition_parallel_lookup(&g, 4, TriangleLookup::Auto);
        // Monotone: κ along the processing order never decreases — each
        // frontier batch is peeled at the current (non-decreasing) level.
        let ks: Vec<u32> = par.order().iter().map(|&e| par.kappa(e)).collect();
        prop_assert!(ks.windows(2).all(|w| w[0] <= w[1]));
        // Permutation: exactly the live edges, each once, no dead slots.
        let mut seen: Vec<EdgeId> = par.order().to_vec();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), par.order().len(), "duplicate edge in peel order");
        let mut live: Vec<EdgeId> = g.edge_ids().collect();
        live.sort_unstable();
        prop_assert_eq!(seen, live, "peel order is not the live edge set");
    }

    #[test]
    fn parallel_order_is_identical_across_threads_and_lookups(g in churned_graph(14)) {
        let baseline =
            triangle_kcore_decomposition_parallel_lookup(&g, 1, TriangleLookup::Stored);
        for lookup in [TriangleLookup::Auto, TriangleLookup::Stored, TriangleLookup::Merge] {
            for threads in 1usize..=8 {
                let par = triangle_kcore_decomposition_parallel_lookup(&g, threads, lookup);
                prop_assert_eq!(
                    par.order(), baseline.order(),
                    "order diverged ({:?}, {threads} threads)", lookup
                );
                prop_assert_eq!(par.kappa_slice(), baseline.kappa_slice());
            }
        }
    }
}
