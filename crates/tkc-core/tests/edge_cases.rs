#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Hard edge cases and failure injection for the core algorithms:
//! degenerate graphs, adversarial shapes, id churn, and misuse handling.

use tkc_core::decompose::{triangle_kcore_decomposition, triangle_kcore_decomposition_stored};
use tkc_core::dynamic::{BatchOp, DynamicTriangleKCore};
use tkc_core::reference::naive_kappa;
use tkc_graph::{generators, Graph, GraphError, VertexId};

#[test]
fn bipartite_graphs_have_zero_kappa_everywhere() {
    // Complete bipartite graphs are triangle-free no matter how dense.
    let mut g = Graph::with_capacity(12, 36);
    for a in 0..6u32 {
        for b in 6..12u32 {
            g.add_edge(VertexId(a), VertexId(b)).unwrap();
        }
    }
    let d = triangle_kcore_decomposition(&g);
    assert_eq!(d.max_kappa(), 0);
    assert!(g.edge_ids().all(|e| d.kappa(e) == 0));
    // And dynamic operations on it stay trivial.
    let mut m = DynamicTriangleKCore::new(g);
    m.remove_edge_between(VertexId(0), VertexId(6)).unwrap();
    m.insert_edge(VertexId(0), VertexId(1)).unwrap(); // first triangle source
    assert_eq!(m.stats().demotions, 0);
}

#[test]
fn wheel_graph_kappa() {
    // Wheel W_n: hub + cycle. Every triangle includes the hub; spoke edges
    // are in 2 triangles, rim edges in 1 → all κ = 1.
    let n = 12u32;
    let mut g = Graph::with_capacity(n as usize + 1, 0);
    for i in 0..n {
        g.add_edge(VertexId(n), VertexId(i)).unwrap();
        g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
    }
    let d = triangle_kcore_decomposition(&g);
    assert!(g.edge_ids().all(|e| d.kappa(e) == 1), "{:?}", d.histogram());
    assert_eq!(naive_kappa(&g), d.kappa_slice());
}

#[test]
fn barbell_demotion_cascade_crosses_the_bar() {
    // Two K6 joined by a path of triangles; deleting deep inside one
    // clique must not disturb the other.
    let mut g = generators::complete(6);
    g.add_vertices(8);
    for i in 6..12u32 {
        for j in (i + 1)..12 {
            g.add_edge(VertexId(i), VertexId(j)).unwrap();
        }
    }
    // Triangle chain bar: 5-12-13, 12-13-6.
    g.add_edge(VertexId(5), VertexId(12)).unwrap();
    g.add_edge(VertexId(12), VertexId(13)).unwrap();
    g.add_edge(VertexId(5), VertexId(13)).unwrap();
    g.add_edge(VertexId(12), VertexId(6)).unwrap();
    g.add_edge(VertexId(13), VertexId(6)).unwrap();
    let mut m = DynamicTriangleKCore::new(g);
    m.remove_edge_between(VertexId(0), VertexId(1)).unwrap();
    let fresh = triangle_kcore_decomposition(m.graph());
    for e in m.graph().edge_ids() {
        assert_eq!(m.kappa(e), fresh.kappa(e));
    }
    // The second clique kept κ = 4.
    let e = m.graph().edge_between(VertexId(6), VertexId(7)).unwrap();
    assert_eq!(m.kappa(e), 4);
}

#[test]
fn edge_id_reuse_does_not_leak_stale_kappa() {
    // Remove a high-κ edge, insert an unrelated edge that reuses its slot:
    // the new edge must start from its own κ, not the corpse's.
    let mut m = DynamicTriangleKCore::new(generators::complete(5));
    let dead = m.graph().edge_between(VertexId(0), VertexId(1)).unwrap();
    m.remove_edge(dead).unwrap();
    m.add_vertices(2);
    let fresh_edge = m.insert_edge(VertexId(5), VertexId(6)).unwrap();
    assert_eq!(fresh_edge, dead, "slot should be recycled");
    assert_eq!(m.kappa(fresh_edge), 0);
    let fresh = triangle_kcore_decomposition(m.graph());
    for e in m.graph().edge_ids() {
        assert_eq!(m.kappa(e), fresh.kappa(e));
    }
}

#[test]
fn repeated_insert_remove_of_same_edge_is_stable() {
    // Toggling one edge 25 times must leave the graph and every κ exactly
    // where they started (ids may move; values by endpoints must not).
    let base = generators::planted_partition(2, 7, 0.8, 0.2, 5);
    let expected = triangle_kcore_decomposition(&base);
    let mut m = DynamicTriangleKCore::new(base.clone());
    let (u, v) = (VertexId(0), VertexId(1));
    assert!(m.graph().has_edge(u, v), "seed edge expected in partition");
    for _ in 0..25 {
        m.remove_edge_between(u, v).unwrap();
        m.insert_edge(u, v).unwrap();
    }
    assert_eq!(m.graph().num_edges(), base.num_edges());
    for (e0, a, b) in base.edges() {
        let e1 = m.graph().edge_between(a, b).expect("edge survived");
        assert_eq!(m.kappa(e1), expected.kappa(e0), "({a},{b})");
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut m = DynamicTriangleKCore::new(generators::path(3));
    assert!(matches!(
        m.insert_edge(VertexId(0), VertexId(0)),
        Err(GraphError::SelfLoop(_))
    ));
    assert!(matches!(
        m.insert_edge(VertexId(0), VertexId(1)),
        Err(GraphError::DuplicateEdge(..))
    ));
    assert!(matches!(
        m.remove_edge_between(VertexId(0), VertexId(2)),
        Err(GraphError::MissingEdge(..))
    ));
    // The failed operations left state intact.
    let fresh = triangle_kcore_decomposition(m.graph());
    for e in m.graph().edge_ids() {
        assert_eq!(m.kappa(e), fresh.kappa(e));
    }
}

#[test]
fn giant_star_plus_clique_handles_hub_skew() {
    // A 500-leaf star whose hub also sits in a K8: hub-degree skew stresses
    // the galloping triangle enumeration and the closure's supp counting.
    let mut g = generators::star(500);
    let base = g.num_vertices();
    g.add_vertices(7);
    let mut members: Vec<VertexId> = (base..base + 7).map(VertexId::from).collect();
    members.push(VertexId(0)); // the hub
    generators::plant_clique(&mut g, &members);
    let d = triangle_kcore_decomposition(&g);
    assert_eq!(d.max_kappa(), 6);
    let mut m = DynamicTriangleKCore::new(g);
    // Removing one clique edge demotes the K8 to 5.
    m.remove_edge_between(members[0], members[1]).unwrap();
    let fresh = triangle_kcore_decomposition(m.graph());
    for e in m.graph().edge_ids() {
        assert_eq!(m.kappa(e), fresh.kappa(e));
    }
}

#[test]
fn stored_variant_agrees_on_adversarial_shapes() {
    for g in [
        generators::complete(10),
        generators::cycle(30),
        generators::star(30),
        generators::watts_strogatz(60, 3, 0.2, 4),
        generators::connected_caveman(5, 5),
    ] {
        assert_eq!(
            triangle_kcore_decomposition(&g).kappa_slice(),
            triangle_kcore_decomposition_stored(&g).kappa_slice()
        );
    }
}

#[test]
fn batch_with_conflicting_ops_settles_consistently() {
    // Insert and remove the same pair within one batch, in both orders.
    let g = generators::planted_partition(2, 6, 0.7, 0.2, 9);
    let mut m = DynamicTriangleKCore::new(g);
    let (u, v) = (VertexId(0), VertexId(11));
    let had = m.graph().has_edge(u, v);
    m.apply_batch([
        BatchOp::Insert(u, v),
        BatchOp::Remove(u, v),
        BatchOp::Insert(u, v),
    ]);
    assert!(m.graph().has_edge(u, v) || had);
    let fresh = triangle_kcore_decomposition(m.graph());
    for e in m.graph().edge_ids() {
        assert_eq!(m.kappa(e), fresh.kappa(e));
    }
}
