//! Persistence for decomposition results and engine state.
//!
//! Two text formats live here:
//!
//! * the **kappa format** (`u v kappa` per line, versioned magic header)
//!   so κ vectors survive across processes — decompose once on a server,
//!   plot/probe elsewhere, or seed a
//!   [`crate::dynamic::DynamicTriangleKCore`] without re-peeling;
//! * the **state format** ([`write_state`] / [`read_state`]), which
//!   additionally records the vertex count so the *graph itself* can be
//!   reconstructed together with κ — the compaction snapshot target of the
//!   `tkc-engine` write-ahead log.
//!
//! All readers return the structured [`PersistError`], which is shared
//! with the engine's WAL so one error vocabulary covers every durability
//! surface (magic/version checks, per-line parse failures, coverage,
//! checksums, torn binary records).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use tkc_graph::{Graph, VertexId};

use crate::decompose::Decomposition;

/// Magic prefix of the kappa format's versioned header line.
pub const KAPPA_MAGIC: &str = "# triangle-kcore kappa v";
/// Kappa format version written by [`write_kappa`].
pub const KAPPA_VERSION: u32 = 2;
/// Magic prefix of the state format's versioned header line.
pub const STATE_MAGIC: &str = "# triangle-kcore state v";
/// State format version written by [`write_state`]. v2 adds an optional
/// `store <stamp>` header field binding the snapshot to the packed
/// `TKCSTOR` file written alongside it; v3 adds the replication
/// watermarks `seq` (WAL sequence number the snapshot covers through —
/// the compaction floor every later WAL record counts up from) and
/// `term` (the primary-election fencing term). v1/v2 files read as
/// `seq 0; term 0`.
pub const STATE_VERSION: u32 = 3;

/// Structured error for every persistence reader in the workspace: the
/// text formats here and the binary WAL records of `tkc-engine`.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A required magic header line was missing or unrecognizable.
    BadMagic {
        /// The magic prefix that was expected.
        expected: &'static str,
    },
    /// The header named a format version this build cannot read.
    UnsupportedVersion {
        /// Which format the header belongs to.
        format: &'static str,
        /// The version number found in the file.
        found: u32,
    },
    /// A line failed to parse.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What was expected.
        reason: String,
    },
    /// An edge named in the file is absent from the graph.
    UnknownEdge {
        /// 1-based line number.
        line: usize,
        /// Edge endpoints as written.
        endpoints: (u32, u32),
    },
    /// The same edge appeared twice.
    DuplicateEdge {
        /// 1-based line number.
        line: usize,
        /// Edge endpoints as written.
        endpoints: (u32, u32),
    },
    /// The file did not cover every live edge exactly once.
    Coverage {
        /// Edges covered by the file.
        covered: usize,
        /// Live edges expected.
        expected: usize,
    },
    /// A binary WAL record failed its checksum.
    Checksum {
        /// Byte offset of the failing record.
        offset: u64,
    },
    /// A binary WAL record was cut short (torn tail).
    Truncated {
        /// Byte offset of the torn record.
        offset: u64,
    },
    /// A structurally invalid binary record (valid checksum, bad content).
    Corrupt {
        /// Byte offset of the record.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// The state snapshot and the packed store next to it do not vouch
    /// for each other: the header's stamp names a store that is missing
    /// or different, or a store file sits next to a pre-store (v1)
    /// snapshot that cannot vouch for it. Recovery must not silently
    /// pick one side — re-pack with `tkc store pack` instead.
    StoreMismatch {
        /// The stamp the state header declared (`None`: the snapshot
        /// predates store stamps).
        expected: Option<String>,
        /// The stamp of the store found on disk (`None`: no readable
        /// store file).
        found: Option<String>,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic { expected } => {
                write!(f, "missing or bad magic header (expected {expected:?})")
            }
            PersistError::UnsupportedVersion { format, found } => {
                write!(f, "unsupported {format} format version {found}")
            }
            PersistError::BadRecord { line, reason } => write!(f, "line {line}: {reason}"),
            PersistError::UnknownEdge {
                line,
                endpoints: (u, v),
            } => write!(f, "line {line}: edge ({u}, {v}) not in graph"),
            PersistError::DuplicateEdge {
                line,
                endpoints: (u, v),
            } => write!(f, "line {line}: duplicate edge ({u}, {v})"),
            PersistError::Coverage { covered, expected } => {
                write!(f, "file covers {covered} of {expected} edges")
            }
            PersistError::Checksum { offset } => {
                write!(f, "checksum mismatch at byte {offset}")
            }
            PersistError::Truncated { offset } => {
                write!(f, "truncated record at byte {offset}")
            }
            PersistError::Corrupt { offset, reason } => {
                write!(f, "corrupt record at byte {offset}: {reason}")
            }
            PersistError::StoreMismatch { expected, found } => {
                let or_none = |s: &Option<String>| s.clone().unwrap_or_else(|| "none".to_string());
                write!(
                    f,
                    "state/store mismatch: snapshot declares store stamp {}, disk has {} \
                     (run `tkc store pack` to re-pack and upgrade)",
                    or_none(expected),
                    or_none(found)
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Checks a comment line against a magic prefix; `Some(version)` when it
/// is a header of that format.
fn parse_header(line: &str, magic: &'static str) -> Option<u32> {
    let rest = line.strip_prefix(magic)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Writes `u v κ` per live edge, in processing order, behind a versioned
/// magic header.
///
/// # Examples
///
/// ```
/// use tkc_graph::generators;
/// use tkc_core::decompose::triangle_kcore_decomposition;
/// use tkc_core::persist::{read_kappa, write_kappa};
///
/// let g = generators::complete(5);
/// let d = triangle_kcore_decomposition(&g);
/// let mut buf = Vec::new();
/// write_kappa(&g, &d, &mut buf).unwrap();
/// let restored = read_kappa(&g, buf.as_slice()).unwrap();
/// assert!(g.edge_ids().all(|e| restored[e.index()] == 3));
/// ```
pub fn write_kappa<W: Write>(g: &Graph, d: &Decomposition, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{KAPPA_MAGIC}{KAPPA_VERSION}; edges {}", g.num_edges())?;
    for &e in d.order() {
        let (u, v) = g.endpoints(e);
        writeln!(w, "{u} {v} {}", d.kappa(e))?;
    }
    w.flush()
}

/// Reads a κ file back against a graph, returning a vector indexed by the
/// graph's edge ids. Errors on unknown format versions, unknown edges,
/// duplicates, or missing edges (every live edge must be covered).
/// Headerless files are accepted as the pre-versioning legacy format.
pub fn read_kappa<R: Read>(g: &Graph, reader: R) -> Result<Vec<u32>, PersistError> {
    let reader = BufReader::new(reader);
    let mut kappa = vec![u32::MAX; g.edge_bound()];
    let mut covered = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with('#') {
            if let Some(version) = parse_header(t, KAPPA_MAGIC) {
                if version == 0 || version > KAPPA_VERSION {
                    return Err(PersistError::UnsupportedVersion {
                        format: "kappa",
                        found: version,
                    });
                }
            }
            continue;
        }
        let (u, v, k) = parse_uvk(t, lineno, "expected 'u v kappa'")?;
        let e = g
            .edge_between(VertexId(u), VertexId(v))
            .ok_or(PersistError::UnknownEdge {
                line: lineno,
                endpoints: (u, v),
            })?;
        if kappa[e.index()] != u32::MAX {
            return Err(PersistError::DuplicateEdge {
                line: lineno,
                endpoints: (u, v),
            });
        }
        kappa[e.index()] = k;
        covered += 1;
    }
    if covered != g.num_edges() {
        return Err(PersistError::Coverage {
            covered,
            expected: g.num_edges(),
        });
    }
    for slot in kappa.iter_mut() {
        if *slot == u32::MAX {
            *slot = 0; // dead slots
        }
    }
    Ok(kappa)
}

/// Parses a `u v kappa` data line.
fn parse_uvk(t: &str, lineno: usize, what: &str) -> Result<(u32, u32, u32), PersistError> {
    let mut parts = t.split_whitespace();
    let bad = || PersistError::BadRecord {
        line: lineno,
        reason: what.to_string(),
    };
    let u: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let v: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let k: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    Ok((u, v, k))
}

/// Writes the full maintainable state — vertex count plus every live edge
/// with its κ — so [`read_state`] can rebuild both the [`Graph`] and the κ
/// vector. This is the compaction snapshot format of the engine WAL.
///
/// `kappa` is indexed by raw edge id, exactly as
/// [`crate::dynamic::DynamicTriangleKCore::kappa_slice`] and
/// [`Decomposition::kappa_slice`] hand it out.
pub fn write_state<W: Write>(g: &Graph, kappa: &[u32], writer: W) -> std::io::Result<()> {
    write_state_with_store(g, kappa, None, writer)
}

/// [`write_state`] with a store binding: when `store_stamp` is given, the
/// header carries `store <stamp>` (the identity of the packed `TKCSTOR`
/// file written in the same compaction — `tkc_store::StoreParts::stamp`).
/// [`verify_store_stamp`] enforces the binding on the way back in.
pub fn write_state_with_store<W: Write>(
    g: &Graph,
    kappa: &[u32],
    store_stamp: Option<&str>,
    writer: W,
) -> std::io::Result<()> {
    write_state_tagged(g, kappa, store_stamp, 0, 0, writer)
}

/// [`write_state_with_store`] with the v3 replication watermarks: `seq`
/// is the WAL sequence number this snapshot covers through (records
/// appended after the compaction count up from it), `term` the fencing
/// term of the primary that wrote it. This is the full-fidelity writer —
/// the other `write_state*` entry points delegate here with zeros.
pub fn write_state_tagged<W: Write>(
    g: &Graph,
    kappa: &[u32],
    store_stamp: Option<&str>,
    seq: u64,
    term: u64,
    writer: W,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    let store = store_stamp
        .map(|s| format!("; store {s}"))
        .unwrap_or_default();
    writeln!(
        w,
        "{STATE_MAGIC}{STATE_VERSION}; vertices {}; edges {}{store}; seq {seq}; term {term}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (e, u, v) in g.edges() {
        let k = kappa.get(e.index()).copied().unwrap_or(0);
        writeln!(w, "{u} {v} {k}")?;
    }
    w.flush()
}

/// Reads a state file back into a fresh `(Graph, κ)` pair. Edge ids are
/// assigned in file order (they need not match the ids of the writing
/// process — κ is re-indexed accordingly). The magic header is mandatory.
///
/// This discards any store stamp in the header; recovery paths that sit
/// next to a packed store must use [`read_state_full`] +
/// [`verify_store_stamp`] so a stale store can never be trusted
/// silently.
pub fn read_state<R: Read>(reader: R) -> Result<(Graph, Vec<u32>), PersistError> {
    let (g, kappa, _) = read_state_full(reader)?;
    Ok((g, kappa))
}

/// [`read_state`] plus the store stamp from a v2 header (`None` for v1
/// files and v2 files written without a store).
pub fn read_state_full<R: Read>(
    reader: R,
) -> Result<(Graph, Vec<u32>, Option<String>), PersistError> {
    let reader = BufReader::new(reader);
    let mut g: Option<Graph> = None;
    let mut declared_edges = 0usize;
    let mut kappa: Vec<u32> = Vec::new();
    let mut store_stamp: Option<String> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with('#') {
            if g.is_none() {
                let version = parse_header(t, STATE_MAGIC).ok_or(PersistError::BadMagic {
                    expected: STATE_MAGIC,
                })?;
                if version == 0 || version > STATE_VERSION {
                    return Err(PersistError::UnsupportedVersion {
                        format: "state",
                        found: version,
                    });
                }
                let (vertices, edges) =
                    parse_state_counts(t).ok_or_else(|| PersistError::BadRecord {
                        line: lineno,
                        reason: "header missing 'vertices N; edges M'".to_string(),
                    })?;
                store_stamp = parse_store_stamp(t);
                // `with_capacity` already materializes the vertex set.
                g = Some(Graph::with_capacity(vertices, edges));
                declared_edges = edges;
            }
            continue;
        }
        let Some(graph) = g.as_mut() else {
            return Err(PersistError::BadMagic {
                expected: STATE_MAGIC,
            });
        };
        let (u, v, k) = parse_uvk(t, lineno, "expected 'u v kappa'")?;
        if u as usize >= graph.num_vertices() || v as usize >= graph.num_vertices() {
            return Err(PersistError::BadRecord {
                line: lineno,
                reason: format!("vertex out of declared range: ({u}, {v})"),
            });
        }
        let e = graph
            .add_edge(VertexId(u), VertexId(v))
            .map_err(|err| match err {
                tkc_graph::GraphError::DuplicateEdge(..) => PersistError::DuplicateEdge {
                    line: lineno,
                    endpoints: (u, v),
                },
                other => PersistError::BadRecord {
                    line: lineno,
                    reason: other.to_string(),
                },
            })?;
        if kappa.len() <= e.index() {
            kappa.resize(e.index() + 1, 0);
        }
        kappa[e.index()] = k;
    }
    let graph = g.ok_or(PersistError::BadMagic {
        expected: STATE_MAGIC,
    })?;
    if graph.num_edges() != declared_edges {
        return Err(PersistError::Coverage {
            covered: graph.num_edges(),
            expected: declared_edges,
        });
    }
    kappa.resize(graph.edge_bound(), 0);
    Ok((graph, kappa, store_stamp))
}

/// Reads **only the header line** of a state file and returns its store
/// stamp (`None` for v1 headers and v2 files written without a store).
/// The engine's fast reopen path calls this to learn whether a packed
/// store can stand in for the text body *before* paying to parse every
/// edge line; [`verify_store_stamp`] then decides whether the store may
/// actually be trusted.
pub fn read_state_stamp<R: Read>(reader: R) -> Result<Option<String>, PersistError> {
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if !t.starts_with('#') {
            break;
        }
        let version = parse_header(t, STATE_MAGIC).ok_or(PersistError::BadMagic {
            expected: STATE_MAGIC,
        })?;
        if version == 0 || version > STATE_VERSION {
            return Err(PersistError::UnsupportedVersion {
                format: "state",
                found: version,
            });
        }
        return Ok(parse_store_stamp(t));
    }
    Err(PersistError::BadMagic {
        expected: STATE_MAGIC,
    })
}

/// Everything a state file's header line declares beyond the counts:
/// the v2 store binding and the v3 replication watermarks (zero for
/// files that predate them).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateHeader {
    /// The packed-store stamp the snapshot vouches for, if any.
    pub store_stamp: Option<String>,
    /// WAL sequence number the snapshot covers through (compaction
    /// floor); 0 for v1/v2 files.
    pub seq: u64,
    /// Fencing term of the primary that wrote the snapshot; 0 for
    /// v1/v2 files and never-replicated engines.
    pub term: u64,
}

/// Reads **only the header line** of a state file and returns every
/// optional field it declares — the store stamp plus the v3 `seq`/`term`
/// replication watermarks. Same cheap-header contract as
/// [`read_state_stamp`], which this supersedes for callers that need
/// the watermarks too.
pub fn read_state_header<R: Read>(reader: R) -> Result<StateHeader, PersistError> {
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if !t.starts_with('#') {
            break;
        }
        let version = parse_header(t, STATE_MAGIC).ok_or(PersistError::BadMagic {
            expected: STATE_MAGIC,
        })?;
        if version == 0 || version > STATE_VERSION {
            return Err(PersistError::UnsupportedVersion {
                format: "state",
                found: version,
            });
        }
        return Ok(StateHeader {
            store_stamp: parse_store_stamp(t),
            seq: parse_header_u64(t, "; seq ").unwrap_or(0),
            term: parse_header_u64(t, "; term ").unwrap_or(0),
        });
    }
    Err(PersistError::BadMagic {
        expected: STATE_MAGIC,
    })
}

/// Extracts `vertices N; edges M` from a state header line (further
/// `;`-separated fields, like v2's `store <stamp>`, may follow).
fn parse_state_counts(t: &str) -> Option<(usize, usize)> {
    let after = t.split_once("; vertices ")?.1;
    let (n, rest) = after.split_once("; edges ")?;
    let m = rest.split(';').next()?.trim();
    Some((n.trim().parse().ok()?, m.parse().ok()?))
}

/// Extracts the optional `store <stamp>` field from a v2 header line.
fn parse_store_stamp(t: &str) -> Option<String> {
    let after = t.split_once("; store ")?.1;
    let stamp = after.split(';').next()?.trim();
    (!stamp.is_empty()).then(|| stamp.to_string())
}

/// Extracts an optional `<key> N` numeric header field (v3's `; seq N`
/// and `; term N`).
fn parse_header_u64(t: &str, key: &str) -> Option<u64> {
    let after = t.split_once(key)?.1;
    after.split(';').next()?.trim().parse().ok()
}

/// The recovery gate between a state snapshot and the packed store next
/// to it. `stamp` is what [`read_state_full`] returned; `store_path` is
/// where the compaction writes its `TKCSTOR` file.
///
/// * stamp present + store matches — `Ok`: the store may be trusted for
///   the fast reopen path.
/// * stamp present + store missing, unreadable, or different —
///   [`PersistError::StoreMismatch`].
/// * no stamp (v1 snapshot) + **no** store file — `Ok`: plain legacy
///   text recovery, nothing to vouch for.
/// * no stamp + a store file present — [`PersistError::StoreMismatch`]:
///   an old snapshot cannot vouch for the store sitting next to it, and
///   silently picking either side could serve wrong data. `tkc store
///   pack` re-packs from the snapshot and upgrades the pair.
pub fn verify_store_stamp(
    stamp: Option<&str>,
    store_path: &std::path::Path,
) -> Result<(), PersistError> {
    let found = match tkc_store::file_stamp(store_path) {
        Ok(s) => Some(s),
        Err(tkc_store::StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => Some(format!("unreadable ({e})")),
    };
    match (stamp, &found) {
        (Some(want), Some(have)) if want == have => Ok(()),
        (None, None) => Ok(()),
        _ => Err(PersistError::StoreMismatch {
            expected: stamp.map(str::to_string),
            found,
        }),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::decompose::triangle_kcore_decomposition;
    use crate::dynamic::DynamicTriangleKCore;
    use tkc_graph::generators;

    #[test]
    fn roundtrip_preserves_kappa() {
        let g = generators::planted_partition(3, 8, 0.7, 0.1, 2);
        let d = triangle_kcore_decomposition(&g);
        let mut buf = Vec::new();
        write_kappa(&g, &d, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with(KAPPA_MAGIC), "magic header missing");
        let restored = read_kappa(&g, buf.as_slice()).unwrap();
        for e in g.edge_ids() {
            assert_eq!(restored[e.index()], d.kappa(e));
        }
    }

    #[test]
    fn restored_kappa_seeds_the_maintainer() {
        let g = generators::connected_caveman(3, 5);
        let d = triangle_kcore_decomposition(&g);
        let mut buf = Vec::new();
        write_kappa(&g, &d, &mut buf).unwrap();
        let kappa = read_kappa(&g, buf.as_slice()).unwrap();
        let mut m = DynamicTriangleKCore::from_parts(g, kappa);
        m.insert_edge(VertexId(0), VertexId(7)).unwrap();
        let fresh = triangle_kcore_decomposition(m.graph());
        for e in m.graph().edge_ids() {
            assert_eq!(m.kappa(e), fresh.kappa(e));
        }
    }

    #[test]
    fn rejects_incomplete_and_alien_files() {
        let g = generators::complete(4);
        let err = |r: Result<Vec<u32>, PersistError>| r.unwrap_err().to_string();
        assert!(err(read_kappa(&g, "0 1 2\n".as_bytes())).contains("covers 1 of 6"));
        assert!(err(read_kappa(&g, "0 9 2\n".as_bytes())).contains("not in graph"));
        assert!(err(read_kappa(&g, "0 1 2\n1 0 2\n".as_bytes())).contains("duplicate"));
        assert!(err(read_kappa(&g, "junk\n".as_bytes())).contains("expected"));
    }

    #[test]
    fn version_gate_accepts_v1_and_rejects_future() {
        let g = generators::complete(3);
        // Legacy v1 header (and headerless files) still read fine.
        let v1 = "# triangle-kcore kappa v1; edges 3\n0 1 1\n0 2 1\n1 2 1\n";
        assert!(read_kappa(&g, v1.as_bytes()).is_ok());
        // A future version is refused with a structured error.
        let v9 = "# triangle-kcore kappa v9; edges 3\n0 1 1\n0 2 1\n1 2 1\n";
        match read_kappa(&g, v9.as_bytes()) {
            Err(PersistError::UnsupportedVersion { format, found }) => {
                assert_eq!((format, found), ("kappa", 9));
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn state_roundtrip_rebuilds_graph_and_kappa() {
        let mut g = generators::planted_partition(2, 7, 0.8, 0.1, 9);
        // Punch a hole so dead edge slots exist in the writer's id space.
        let victim = g.edge_ids().nth(3).unwrap();
        g.remove_edge(victim).unwrap();
        let d = triangle_kcore_decomposition(&g);
        let mut buf = Vec::new();
        write_state(&g, d.kappa_slice(), &mut buf).unwrap();
        let (g2, kappa2) = read_state(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        // Same κ per (u, v) pair, despite re-assigned edge ids.
        for (e, u, v) in g.edges() {
            let e2 = g2.edge_between(u, v).unwrap();
            assert_eq!(kappa2[e2.index()], d.kappa(e));
        }
        // The rebuilt pair seeds the maintainer consistently.
        let mut m = DynamicTriangleKCore::from_parts(g2, kappa2);
        m.insert_edge(VertexId(0), VertexId(12)).ok();
        let fresh = triangle_kcore_decomposition(m.graph());
        for e in m.graph().edge_ids() {
            assert_eq!(m.kappa(e), fresh.kappa(e));
        }
    }

    #[test]
    fn state_reader_requires_magic_and_matching_counts() {
        assert!(matches!(
            read_state("0 1 1\n".as_bytes()),
            Err(PersistError::BadMagic { .. })
        ));
        assert!(matches!(
            read_state("# triangle-kcore state v7; vertices 2; edges 1\n0 1 0\n".as_bytes()),
            Err(PersistError::UnsupportedVersion { found: 7, .. })
        ));
        let short = "# triangle-kcore state v1; vertices 3; edges 2\n0 1 0\n";
        assert!(matches!(
            read_state(short.as_bytes()),
            Err(PersistError::Coverage {
                covered: 1,
                expected: 2
            })
        ));
        let dup = "# triangle-kcore state v1; vertices 3; edges 2\n0 1 0\n1 0 0\n";
        assert!(matches!(
            read_state(dup.as_bytes()),
            Err(PersistError::DuplicateEdge { .. })
        ));
        let oob = "# triangle-kcore state v1; vertices 2; edges 1\n0 5 0\n";
        assert!(matches!(
            read_state(oob.as_bytes()),
            Err(PersistError::BadRecord { .. })
        ));
    }

    #[test]
    fn state_store_stamp_roundtrips_and_v1_reads_stampless() {
        let g = generators::complete(4);
        let d = triangle_kcore_decomposition(&g);
        let mut buf = Vec::new();
        write_state_with_store(&g, d.kappa_slice(), Some("deadbeef"), &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("# triangle-kcore state v3"), "{text}");
        assert!(text.contains("; store deadbeef"), "{text}");
        let (g2, kappa2, stamp) = read_state_full(buf.as_slice()).unwrap();
        assert_eq!(stamp.as_deref(), Some("deadbeef"));
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(kappa2.len(), g2.edge_bound());
        // Stampless v3 and legacy v1 both read with no stamp.
        let mut plain = Vec::new();
        write_state(&g, d.kappa_slice(), &mut plain).unwrap();
        let (_, _, stamp) = read_state_full(plain.as_slice()).unwrap();
        assert_eq!(stamp, None);
        let v1 = "# triangle-kcore state v1; vertices 2; edges 1\n0 1 0\n";
        let (g1, _, stamp) = read_state_full(v1.as_bytes()).unwrap();
        assert_eq!(g1.num_edges(), 1);
        assert_eq!(stamp, None);
    }

    #[test]
    fn state_v3_seq_and_term_roundtrip_and_default_to_zero() {
        let g = generators::complete(3);
        let d = triangle_kcore_decomposition(&g);
        let mut buf = Vec::new();
        write_state_tagged(&g, d.kappa_slice(), Some("cafe"), 1234, 7, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("; seq 1234; term 7"), "{text}");
        let header = read_state_header(buf.as_slice()).unwrap();
        assert_eq!(header.store_stamp.as_deref(), Some("cafe"));
        assert_eq!((header.seq, header.term), (1234, 7));
        // The body reader is untroubled by the extra fields.
        let (g2, _, stamp) = read_state_full(buf.as_slice()).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(stamp.as_deref(), Some("cafe"));
        // Pre-v3 headers read as zero watermarks.
        let v2 = "# triangle-kcore state v2; vertices 2; edges 1\n0 1 0\n";
        let header = read_state_header(v2.as_bytes()).unwrap();
        assert_eq!(header, StateHeader::default());
        let v1 = "# triangle-kcore state v1; vertices 2; edges 1\n0 1 0\n";
        assert_eq!((read_state_header(v1.as_bytes()).unwrap()).seq, 0);
        // Future versions are refused, headerless files rejected.
        let v9 = "# triangle-kcore state v9; vertices 2; edges 1\n0 1 0\n";
        assert!(matches!(
            read_state_header(v9.as_bytes()),
            Err(PersistError::UnsupportedVersion { found: 9, .. })
        ));
        assert!(matches!(
            read_state_header("0 1 0\n".as_bytes()),
            Err(PersistError::BadMagic { .. })
        ));
    }

    #[test]
    fn store_stamp_gate_blocks_every_mismatch_shape() {
        use tkc_graph::csr::edge_supports_csr;
        let dir = std::env::temp_dir().join("tkc_core_persist_gate_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let store_path = dir.join("state.tkcstor");
        std::fs::remove_file(&store_path).ok();

        // Legacy pair: no stamp, no store — fine.
        verify_store_stamp(None, &store_path).unwrap();
        // Stamp declared but store missing — blocked.
        assert!(matches!(
            verify_store_stamp(Some("deadbeef"), &store_path),
            Err(PersistError::StoreMismatch {
                expected: Some(_),
                found: None
            })
        ));

        // Write a real store; its stamp must pass, others must not.
        let g = generators::planted_partition(2, 6, 0.9, 0.2, 4);
        let sup = edge_supports_csr(&g);
        let parts = tkc_store::pack_graph(&g, &sup, None).unwrap();
        parts.write_path(&store_path).unwrap();
        let stamp = parts.stamp();
        assert_eq!(tkc_store::file_stamp(&store_path).unwrap(), stamp);
        verify_store_stamp(Some(&stamp), &store_path).unwrap();
        assert!(matches!(
            verify_store_stamp(Some("00000000"), &store_path),
            Err(PersistError::StoreMismatch {
                expected: Some(_),
                found: Some(_)
            })
        ));
        // An old (stampless) snapshot next to a store: never trust either.
        assert!(matches!(
            verify_store_stamp(None, &store_path),
            Err(PersistError::StoreMismatch {
                expected: None,
                found: Some(_)
            })
        ));
        // A corrupt store under a declared stamp is also a mismatch, not
        // a panic or silent pass.
        std::fs::write(&store_path, b"TKCSTOR garbage").unwrap();
        assert!(matches!(
            verify_store_stamp(Some(&stamp), &store_path),
            Err(PersistError::StoreMismatch { .. })
        ));
        std::fs::remove_file(&store_path).ok();
    }
}
