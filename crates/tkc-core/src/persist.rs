//! Persistence for decomposition results: a small text format
//! (`u v kappa` per line) so κ vectors survive across processes — e.g.
//! decompose once on a server, plot/probe elsewhere, or seed a
//! [`crate::dynamic::DynamicTriangleKCore`] without re-peeling.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use tkc_graph::{Graph, VertexId};

use crate::decompose::Decomposition;

/// Writes `u v κ` per live edge, in processing order.
///
/// # Examples
///
/// ```
/// use tkc_graph::generators;
/// use tkc_core::decompose::triangle_kcore_decomposition;
/// use tkc_core::persist::{read_kappa, write_kappa};
///
/// let g = generators::complete(5);
/// let d = triangle_kcore_decomposition(&g);
/// let mut buf = Vec::new();
/// write_kappa(&g, &d, &mut buf).unwrap();
/// let restored = read_kappa(&g, buf.as_slice()).unwrap();
/// assert!(g.edge_ids().all(|e| restored[e.index()] == 3));
/// ```
pub fn write_kappa<W: Write>(g: &Graph, d: &Decomposition, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# triangle-kcore kappa v1; edges {}", g.num_edges())?;
    for &e in d.order() {
        let (u, v) = g.endpoints(e);
        writeln!(w, "{u} {v} {}", d.kappa(e))?;
    }
    w.flush()
}

/// Reads a κ file back against a graph, returning a vector indexed by the
/// graph's edge ids. Errors on unknown edges, duplicates, or missing
/// edges (every live edge must be covered).
pub fn read_kappa<R: Read>(g: &Graph, reader: R) -> Result<Vec<u32>, String> {
    let reader = BufReader::new(reader);
    let mut kappa = vec![u32::MAX; g.edge_bound()];
    let mut covered = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let bad = || format!("line {}: expected 'u v kappa'", lineno + 1);
        let u: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let v: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let k: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let e = g
            .edge_between(VertexId(u), VertexId(v))
            .ok_or_else(|| format!("line {}: edge ({u}, {v}) not in graph", lineno + 1))?;
        if kappa[e.index()] != u32::MAX {
            return Err(format!("line {}: duplicate edge ({u}, {v})", lineno + 1));
        }
        kappa[e.index()] = k;
        covered += 1;
    }
    if covered != g.num_edges() {
        return Err(format!(
            "kappa file covers {covered} of {} edges",
            g.num_edges()
        ));
    }
    for slot in kappa.iter_mut() {
        if *slot == u32::MAX {
            *slot = 0; // dead slots
        }
    }
    Ok(kappa)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::decompose::triangle_kcore_decomposition;
    use crate::dynamic::DynamicTriangleKCore;
    use tkc_graph::generators;

    #[test]
    fn roundtrip_preserves_kappa() {
        let g = generators::planted_partition(3, 8, 0.7, 0.1, 2);
        let d = triangle_kcore_decomposition(&g);
        let mut buf = Vec::new();
        write_kappa(&g, &d, &mut buf).unwrap();
        let restored = read_kappa(&g, buf.as_slice()).unwrap();
        for e in g.edge_ids() {
            assert_eq!(restored[e.index()], d.kappa(e));
        }
    }

    #[test]
    fn restored_kappa_seeds_the_maintainer() {
        let g = generators::connected_caveman(3, 5);
        let d = triangle_kcore_decomposition(&g);
        let mut buf = Vec::new();
        write_kappa(&g, &d, &mut buf).unwrap();
        let kappa = read_kappa(&g, buf.as_slice()).unwrap();
        let mut m = DynamicTriangleKCore::from_parts(g, kappa);
        m.insert_edge(VertexId(0), VertexId(7)).unwrap();
        let fresh = triangle_kcore_decomposition(m.graph());
        for e in m.graph().edge_ids() {
            assert_eq!(m.kappa(e), fresh.kappa(e));
        }
    }

    #[test]
    fn rejects_incomplete_and_alien_files() {
        let g = generators::complete(4);
        assert!(read_kappa(&g, "0 1 2\n".as_bytes())
            .unwrap_err()
            .contains("covers 1 of 6"));
        assert!(read_kappa(&g, "0 9 2\n".as_bytes())
            .unwrap_err()
            .contains("not in graph"));
        assert!(read_kappa(&g, "0 1 2\n1 0 2\n".as_bytes())
            .unwrap_err()
            .contains("duplicate"));
        assert!(read_kappa(&g, "junk\n".as_bytes())
            .unwrap_err()
            .contains("expected"));
    }
}
