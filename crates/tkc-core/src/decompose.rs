//! Algorithm 1 of the paper: compute every edge's maximum Triangle K-Core
//! number `κ(e)` by peeling edges in increasing support order.
//!
//! The implementation uses the bucket-sort layout the paper recommends
//! (step 7 footnote): a counting-sorted edge array plus per-bucket start
//! indices gives O(1) "decrement support and re-sort" (step 16), for an
//! overall cost of `O(|E| + Σ_e min(deg u, deg v))` — linear in the number
//! of triangle *checks*, matching the paper's `O(|Tri|)` processing bound.
//!
//! The dominant cost is the **initial support stage**. By default it runs
//! on the oriented CSR snapshot kernel (`tkc_graph::csr`), which enumerates
//! each triangle exactly once and parallelizes across the worker pool —
//! see [`Decomposition::compute_with`]. Building with the `hash-supports`
//! feature swaps back the seed's mutable-adjacency support path (useful for
//! differential debugging of the kernel itself); the peel loop is identical
//! either way and the κ output is bit-identical by construction.

use std::time::{Duration, Instant};

#[cfg(feature = "hash-supports")]
use tkc_graph::triangles::edge_supports;
use tkc_graph::{EdgeId, Graph};

/// The result of a Triangle K-Core decomposition.
///
/// Paper correspondence: `κ(e)` is Definition 4's maximum Triangle K-Core
/// number of the edge; `co_clique_size(e) = κ(e) + 2` is the proxy the
/// visual-analytic layer plots (§V); `order` is the processing order used
/// by Rule 1 and the update algorithms of the appendix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    kappa: Vec<u32>,
    order: Vec<EdgeId>,
    max_kappa: u32,
}

impl Decomposition {
    /// Runs Algorithm 1 sequentially. Equivalent to
    /// [`triangle_kcore_decomposition`].
    pub fn compute(g: &Graph) -> Decomposition {
        Decomposition::compute_with(g, 1)
    }

    /// Runs Algorithm 1 with `threads` workers (`0` = available
    /// parallelism). Parallelism covers the whole run, not just supports:
    /// above the wedge-work spawn floor the peel goes level-synchronous
    /// (see [`crate::peel_parallel`]) — frontier rounds of atomic support
    /// decrements over the frozen CSR — with output bit-identical to the
    /// sequential reference peel for every thread count.
    pub fn compute_with(g: &Graph, threads: usize) -> Decomposition {
        triangle_kcore_decomposition_with(g, threads)
    }

    /// Assembles a decomposition from parts a peel implementation has
    /// already validated (crate-internal: the level-synchronous parallel
    /// peel builds κ/order/max-κ itself and must produce the same
    /// invariants as [`peel_with_supports`] — κ bit-identical, `order` a
    /// genuine peel order non-decreasing in κ).
    pub(crate) fn from_parts(kappa: Vec<u32>, order: Vec<EdgeId>, max_kappa: u32) -> Decomposition {
        Decomposition {
            kappa,
            order,
            max_kappa,
        }
    }

    /// Wraps an externally maintained κ vector (the dynamic maintainer's,
    /// or one restored by [`crate::persist`]) as a decomposition view, so
    /// snapshot consumers — histograms, level-set extraction, the serving
    /// layer — can query it through the same interface.
    ///
    /// The processing order is synthesized by counting-sorting live edges
    /// on `(κ, edge id)`: non-decreasing in κ, as every order consumer
    /// requires, but *not* necessarily the order Algorithm 1 would have
    /// produced — Rule 1 triangle recovery ([`core_triangles_of_edge`])
    /// wants a genuine peel order, so run the real decomposition for that.
    pub fn from_kappa(g: &Graph, mut kappa: Vec<u32>) -> Decomposition {
        kappa.resize(g.edge_bound().max(kappa.len()), 0);
        let max_kappa = g.edge_ids().map(|e| kappa[e.index()]).max().unwrap_or(0);
        // Counting sort: bucket sizes, prefix offsets, then placement in
        // edge-id order so ties stay sorted by id.
        let mut counts = vec![0usize; max_kappa as usize + 2];
        for e in g.edge_ids() {
            counts[kappa[e.index()] as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut order = vec![EdgeId::from(0usize); g.num_edges()];
        for e in g.edge_ids() {
            let slot = &mut counts[kappa[e.index()] as usize];
            order[*slot] = e;
            *slot += 1;
        }
        Decomposition {
            kappa,
            order,
            max_kappa,
        }
    }

    /// κ of a live edge. Slots of edges that were dead at decomposition
    /// time read 0.
    #[inline]
    pub fn kappa(&self, e: EdgeId) -> u32 {
        self.kappa[e.index()]
    }

    /// The κ vector indexed by raw edge id.
    #[inline]
    pub fn kappa_slice(&self) -> &[u32] {
        &self.kappa
    }

    /// Largest κ in the graph.
    #[inline]
    pub fn max_kappa(&self) -> u32 {
        self.max_kappa
    }

    /// The paper's clique-size proxy for an edge: `κ(e) + 2` (an
    /// `n`-clique is a Triangle K-Core of number `n − 2`).
    #[inline]
    pub fn co_clique_size(&self, e: EdgeId) -> u32 {
        self.kappa(e) + 2
    }

    /// Edges in the order Algorithm 1 processed them (non-decreasing κ).
    /// This is the `Edges` list of the paper; index = `e.order`.
    #[inline]
    pub fn order(&self) -> &[EdgeId] {
        &self.order
    }

    /// Number of live edges with each κ value (`hist[k]` = count of edges
    /// with `κ == k`).
    pub fn histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_kappa as usize + 1];
        for &e in &self.order {
            hist[self.kappa(e) as usize] += 1;
        }
        hist
    }

    /// Consumes the decomposition, returning the κ vector (used to seed the
    /// dynamic maintainer without recomputing).
    pub fn into_kappa(self) -> Vec<u32> {
        self.kappa
    }

    /// The processing rank of each edge (`rank[e] = position in order`,
    /// `usize::MAX` for dead slots) — the paper's `e.order`.
    pub fn ranks(&self) -> Vec<usize> {
        let bound = self
            .order
            .iter()
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0)
            .max(self.kappa.len());
        let mut rank = vec![usize::MAX; bound];
        for (i, &e) in self.order.iter().enumerate() {
            rank[e.index()] = i;
        }
        rank
    }
}

/// The paper's **Rule 1**: without storing triangles, recover which of an
/// edge's triangles lie in its maximum Triangle K-Core — sort the
/// triangles by "process time" (the smallest processing rank among their
/// edges); the *last* `κ(e)` of them are in the core.
///
/// Returns the apexes `w` of those triangles (each identifies the triangle
/// `{u, v, w}` on the edge `e = {u, v}`).
pub fn core_triangles_of_edge(
    g: &Graph,
    decomp: &Decomposition,
    ranks: &[usize],
    e: EdgeId,
) -> Vec<tkc_graph::VertexId> {
    let k = decomp.kappa(e) as usize;
    if k == 0 {
        return Vec::new();
    }
    let mut tris: Vec<(usize, tkc_graph::VertexId)> = Vec::new();
    g.for_each_triangle_on_edge(e, |w, e1, e2| {
        let process_time = ranks[e.index()]
            .min(ranks[e1.index()])
            .min(ranks[e2.index()]);
        tris.push((process_time, w));
    });
    tris.sort_unstable();
    tris.iter().rev().take(k).map(|&(_, w)| w).collect()
}

/// Runs Algorithm 1 on `g`: every live edge's maximum Triangle K-Core
/// number, plus the processing order.
///
/// # Examples
///
/// ```
/// use tkc_graph::{generators, Graph};
/// use tkc_core::decompose::triangle_kcore_decomposition;
///
/// // Every edge of K5 has κ = 3 (= 5 - 2).
/// let g = generators::complete(5);
/// let d = triangle_kcore_decomposition(&g);
/// assert!(g.edge_ids().all(|e| d.kappa(e) == 3));
/// assert_eq!(d.max_kappa(), 3);
/// ```
pub fn triangle_kcore_decomposition(g: &Graph) -> Decomposition {
    triangle_kcore_decomposition_with(g, 1)
}

/// The initial support stage of Algorithm 1. Default: the oriented CSR
/// snapshot kernel (each triangle enumerated once, wedge-balanced worker
/// chunks when `threads > 1`). The `hash-supports` feature restores the
/// seed's mutable-adjacency path as a differential-debugging fallback;
/// both produce bit-identical support vectors (counts are exact integers).
fn initial_supports(g: &Graph, threads: usize) -> Vec<u32> {
    #[cfg(feature = "hash-supports")]
    {
        let _ = threads;
        edge_supports(g)
    }
    #[cfg(not(feature = "hash-supports"))]
    {
        if threads == 1 || !tkc_graph::parallel::should_parallelize(g, threads) {
            tkc_graph::csr::edge_supports_csr(g)
        } else {
            tkc_graph::csr::edge_supports_csr_parallel(g, threads)
        }
    }
}

/// Wall-clock split of one Algorithm 1 run: CSR freeze, initial support
/// counting, and the sequential peel. `freeze` is zero under the
/// `hash-supports` feature (that path has no snapshot stage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Building the oriented CSR snapshot.
    pub freeze: Duration,
    /// Counting initial per-edge supports (the parallelized stage).
    pub supports: Duration,
    /// The peel: the sequential bucket loop, or — on the level-sync path
    /// — building the full-adjacency view plus the frontier rounds.
    pub peel: Duration,
}

impl PhaseTimings {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.freeze + self.supports + self.peel
    }
}

/// [`triangle_kcore_decomposition_with`] plus per-phase wall-clock
/// timings, recorded into the global [`tkc_obs`] registry as
/// `tkc_decompose_phase_seconds{phase=...}` (unless
/// [`tkc_obs::kernel_instrumentation_enabled`] is off). Backs
/// `tkc decompose --timings` and `bench_snapshot`'s phase attribution.
pub fn triangle_kcore_decomposition_timed(
    g: &Graph,
    threads: usize,
) -> (Decomposition, PhaseTimings) {
    let mut timings = PhaseTimings::default();
    let sup;
    #[cfg(feature = "hash-supports")]
    {
        let _ = threads;
        let t0 = Instant::now();
        sup = edge_supports(g);
        timings.supports = t0.elapsed();
    }
    #[cfg(not(feature = "hash-supports"))]
    {
        // Level-sync path: the parallel peel times its own phases (its
        // `peel` covers building the full-adjacency view plus the
        // frontier rounds, so `tkc_decompose_phase_seconds{phase="peel"}`
        // stays an honest end-to-end attribution).
        if crate::peel_parallel::should_peel_parallel(g, threads) {
            let (decomp, timings) =
                crate::peel_parallel::triangle_kcore_decomposition_parallel_timed(g, threads);
            if tkc_obs::kernel_instrumentation_enabled() {
                record_phase_timings(&timings);
            }
            return (decomp, timings);
        }
        let t0 = Instant::now();
        let csr = tkc_graph::csr::CsrGraph::freeze(g);
        timings.freeze = t0.elapsed();
        let t1 = Instant::now();
        sup = csr.edge_supports();
        timings.supports = t1.elapsed();
    }
    let t2 = Instant::now();
    let decomp = peel_with_supports(g, sup);
    timings.peel = t2.elapsed();
    if tkc_obs::kernel_instrumentation_enabled() {
        record_phase_timings(&timings);
    }
    (decomp, timings)
}

/// Records one run's phase split into the global registry, and — when
/// span tracing is on — as `freeze`/`supports`/`peel` spans hanging off
/// the span that triggered the decomposition (e.g. a CLI `decompose`
/// request or an engine recovery).
fn record_phase_timings(t: &PhaseTimings) {
    tkc_obs::span::record_manual("freeze", t.freeze);
    tkc_obs::span::record_manual("supports", t.supports);
    tkc_obs::span::record_manual("peel", t.peel);
    let reg = tkc_obs::MetricsRegistry::global();
    const HELP: &str = "Wall-clock time of each Algorithm 1 decompose phase";
    reg.histogram_with(
        "tkc_decompose_phase_seconds",
        HELP,
        1e-9,
        &[("phase", "freeze")],
    )
    .record_duration(t.freeze);
    reg.histogram_with(
        "tkc_decompose_phase_seconds",
        HELP,
        1e-9,
        &[("phase", "supports")],
    )
    .record_duration(t.supports);
    reg.histogram_with(
        "tkc_decompose_phase_seconds",
        HELP,
        1e-9,
        &[("phase", "peel")],
    )
    .record_duration(t.peel);
}

/// [`triangle_kcore_decomposition`] with a thread count (`0` = available
/// parallelism). κ, order, and max κ are identical for every thread
/// count.
///
/// When parallelism is requested and the graph clears the wedge-work
/// spawn floor, the whole run goes level-synchronous
/// ([`crate::peel_parallel`]): parallel supports *and* a frontier-round
/// peel, instead of parallel supports feeding the sequential bucket
/// peel. Otherwise the seed path below runs unchanged — it remains the
/// reference implementation the level-sync path is differentially
/// checked against.
pub fn triangle_kcore_decomposition_with(g: &Graph, threads: usize) -> Decomposition {
    #[cfg(not(feature = "hash-supports"))]
    if crate::peel_parallel::should_peel_parallel(g, threads) {
        return crate::peel_parallel::decompose_level_sync(g, threads);
    }
    peel_with_supports(g, initial_supports(g, threads))
}

/// The peel loop of Algorithm 1 (steps 7–17) given precomputed initial
/// supports. Shared by the plain and timed entry points.
fn peel_with_supports(g: &Graph, mut sup: Vec<u32>) -> Decomposition {
    let bound = g.edge_bound();
    let m = g.num_edges();
    let mut kappa = vec![0u32; bound];
    if m == 0 {
        return Decomposition {
            kappa,
            order: Vec::new(),
            max_kappa: 0,
        };
    }

    // Counting sort of live edges by support (paper step 7).
    let max_sup = g.edge_ids().map(|e| sup[e.index()]).max().unwrap_or(0) as usize;
    let mut bin = vec![0usize; max_sup + 2];
    for e in g.edge_ids() {
        bin[sup[e.index()] as usize] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut sorted: Vec<EdgeId> = vec![EdgeId(0); m];
    let mut pos = vec![usize::MAX; bound];
    {
        let mut cursor = bin.clone();
        for e in g.edge_ids() {
            let s = sup[e.index()] as usize;
            pos[e.index()] = cursor[s];
            sorted[cursor[s]] = e;
            cursor[s] += 1;
        }
    }

    let mut processed = vec![false; bound];
    let mut max_kappa = 0u32;

    for i in 0..m {
        let e = sorted[i];
        let k = sup[e.index()];
        #[cfg(feature = "check-invariants")]
        {
            // analyze: invariant(verify_decomposition)
            debug_assert!(
                !processed[e.index()],
                "processing-order violation: edge {} popped twice",
                e.index()
            );
            // analyze: invariant(verify_decomposition)
            debug_assert!(
                k >= max_kappa,
                "bucket-queue monotonicity violation: popped support {k} \
                 below current level {max_kappa}"
            );
            debug_assert_eq!(
                pos[e.index()],
                i,
                "bucket position table out of sync at pop"
            );
        }
        kappa[e.index()] = k;
        max_kappa = max_kappa.max(k);
        processed[e.index()] = true;
        // Advance the bucket cursor for value k past this element so later
        // decrements into bucket k land after position i.
        bin[k as usize] = i + 1;
        // Steps 10-17: every *unprocessed* triangle on e (both other edges
        // unprocessed) may no longer support a higher core for its other
        // edges; decrement their upper bounds.
        g.for_each_triangle_on_edge(e, |_, e1, e2| {
            if processed[e1.index()] || processed[e2.index()] {
                return; // triangle already processed (step 17)
            }
            for x in [e1, e2] {
                let sx = sup[x.index()];
                if sx > k {
                    // O(1) re-sort: swap x with the first element of its
                    // bucket, advance the bucket start, decrement.
                    let px = pos[x.index()];
                    let pw = bin[sx as usize];
                    let w = sorted[pw];
                    #[cfg(feature = "check-invariants")]
                    {
                        debug_assert_eq!(
                            sorted[px], x,
                            "bucket position table out of sync before swap"
                        );
                        debug_assert!(pw > i, "bucket start points at an already-processed slot");
                    }
                    if x != w {
                        sorted[px] = w;
                        sorted[pw] = x;
                        pos[w.index()] = px;
                        pos[x.index()] = pw;
                    }
                    bin[sx as usize] += 1;
                    sup[x.index()] = sx - 1;
                    #[cfg(feature = "check-invariants")]
                    // analyze: invariant(check_support_kernels)
                    debug_assert!(
                        sup[x.index()] >= k,
                        "support of edge {} decremented below current level {k}",
                        x.index()
                    );
                }
            }
        });
    }

    Decomposition {
        kappa,
        order: sorted,
        max_kappa,
    }
}

/// Algorithm 1 with **stored triangles** (the paper's §IV-A tradeoff): all
/// triangles are materialized once up front and the peel walks per-edge
/// triangle lists instead of re-intersecting adjacency lists. Faster for
/// graphs whose triangle lists fit in memory; `triangle_kcore_decomposition`
/// is the memory-lean variant the paper recommends for the largest graphs.
pub fn triangle_kcore_decomposition_stored(g: &Graph) -> Decomposition {
    let bound = g.edge_bound();
    let m = g.num_edges();
    if m == 0 {
        return Decomposition {
            kappa: vec![0; bound],
            order: Vec::new(),
            max_kappa: 0,
        };
    }

    // Materialize triangles: per-edge offsets into a flat (e1, e2) array.
    let mut counts = vec![0u32; bound];
    tkc_graph::triangles::for_each_triangle(g, |t| {
        for e in t.edges {
            counts[e.index()] += 1;
        }
    });
    let mut offset = vec![0usize; bound + 1];
    for i in 0..bound {
        offset[i + 1] = offset[i] + counts[i] as usize;
    }
    let total = offset[bound];
    let mut flat: Vec<(EdgeId, EdgeId)> = vec![(EdgeId(0), EdgeId(0)); total];
    let mut cursor = offset.clone();
    tkc_graph::triangles::for_each_triangle(g, |t| {
        for (i, &e) in t.edges.iter().enumerate() {
            let (a, b) = match i {
                0 => (t.edges[1], t.edges[2]),
                1 => (t.edges[0], t.edges[2]),
                _ => (t.edges[0], t.edges[1]),
            };
            flat[cursor[e.index()]] = (a, b);
            cursor[e.index()] += 1;
        }
    });

    let mut sup = counts;
    let mut kappa = vec![0u32; bound];
    let max_sup = g.edge_ids().map(|e| sup[e.index()]).max().unwrap_or(0) as usize;
    let mut bin = vec![0usize; max_sup + 2];
    for e in g.edge_ids() {
        bin[sup[e.index()] as usize] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut sorted: Vec<EdgeId> = vec![EdgeId(0); m];
    let mut pos = vec![usize::MAX; bound];
    {
        let mut c = bin.clone();
        for e in g.edge_ids() {
            let s = sup[e.index()] as usize;
            pos[e.index()] = c[s];
            sorted[c[s]] = e;
            c[s] += 1;
        }
    }

    let mut processed = vec![false; bound];
    let mut max_kappa = 0u32;
    for i in 0..m {
        let e = sorted[i];
        let k = sup[e.index()];
        kappa[e.index()] = k;
        max_kappa = max_kappa.max(k);
        processed[e.index()] = true;
        bin[k as usize] = i + 1;
        for &(e1, e2) in &flat[offset[e.index()]..offset[e.index() + 1]] {
            if processed[e1.index()] || processed[e2.index()] {
                continue;
            }
            for x in [e1, e2] {
                let sx = sup[x.index()];
                if sx > k {
                    let px = pos[x.index()];
                    let pw = bin[sx as usize];
                    let w = sorted[pw];
                    if x != w {
                        sorted[px] = w;
                        sorted[pw] = x;
                        pos[w.index()] = px;
                        pos[x.index()] = pw;
                    }
                    bin[sx as usize] += 1;
                    sup[x.index()] = sx - 1;
                }
            }
        }
    }

    Decomposition {
        kappa,
        order: sorted,
        max_kappa,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::{generators, VertexId};

    #[test]
    fn stored_variant_matches_streaming_variant() {
        for seed in 0..6 {
            let g = generators::gnp(40, 0.2, seed);
            let a = triangle_kcore_decomposition(&g);
            let b = triangle_kcore_decomposition_stored(&g);
            for e in g.edge_ids() {
                assert_eq!(a.kappa(e), b.kappa(e), "seed {seed}");
            }
            assert_eq!(a.max_kappa(), b.max_kappa());
        }
        // Also on a structured graph with dead edge slots.
        let mut g = generators::connected_caveman(4, 6);
        let dead = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.remove_edge(dead).unwrap();
        let a = triangle_kcore_decomposition(&g);
        let b = triangle_kcore_decomposition_stored(&g);
        assert_eq!(a.kappa_slice(), b.kappa_slice());
    }

    fn kappa_of(g: &Graph, u: u32, v: u32, d: &Decomposition) -> u32 {
        d.kappa(g.edge_between(VertexId(u), VertexId(v)).unwrap())
    }

    #[test]
    fn compute_with_threads_is_invariant() {
        // κ, processing order, and max κ must not depend on the support
        // stage's thread count (or kernel: CSR vs hash is feature-gated,
        // and both run under CI).
        for seed in 0..4 {
            let g = generators::holme_kim(400, 3, 0.6, seed);
            let base = triangle_kcore_decomposition(&g);
            for threads in [0, 2, 4] {
                let d = Decomposition::compute_with(&g, threads);
                assert_eq!(d.kappa_slice(), base.kappa_slice(), "seed {seed}");
                assert_eq!(d.max_kappa(), base.max_kappa());
            }
            assert_eq!(Decomposition::compute(&g).kappa_slice(), base.kappa_slice());
        }
    }

    #[test]
    fn timed_variant_matches_and_reports_phases() {
        for threads in [1, 3] {
            let g = generators::holme_kim(300, 3, 0.5, 7);
            let base = triangle_kcore_decomposition(&g);
            let (d, t) = triangle_kcore_decomposition_timed(&g, threads);
            assert_eq!(d.kappa_slice(), base.kappa_slice());
            assert_eq!(d.max_kappa(), base.max_kappa());
            // The peel always runs; supports always run; totals add up.
            assert!(t.peel > Duration::ZERO);
            assert_eq!(t.total(), t.freeze + t.supports + t.peel);
        }
        // Phase histograms land in the global registry.
        let text = tkc_obs::MetricsRegistry::global().render();
        assert!(text.contains("tkc_decompose_phase_seconds_bucket{phase=\"peel\""));
        assert!(text.contains("tkc_decompose_phase_seconds_bucket{phase=\"supports\""));
    }

    #[test]
    fn compute_with_handles_dead_slots() {
        let mut g = generators::planted_partition(3, 12, 0.7, 0.05, 2);
        let victims: Vec<_> = g.edge_ids().step_by(7).collect();
        for e in victims {
            g.remove_edge(e).unwrap();
        }
        let base = triangle_kcore_decomposition(&g);
        let par = Decomposition::compute_with(&g, 3);
        assert_eq!(par.kappa_slice(), base.kappa_slice());
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let d = triangle_kcore_decomposition(&Graph::new());
        assert_eq!(d.max_kappa(), 0);
        assert!(d.order().is_empty());

        let path = generators::path(4);
        let d = triangle_kcore_decomposition(&path);
        assert_eq!(d.max_kappa(), 0);
        assert_eq!(d.order().len(), 3);
        for e in path.edge_ids() {
            assert_eq!(d.kappa(e), 0);
            assert_eq!(d.co_clique_size(e), 2);
        }
    }

    #[test]
    fn clique_kappa_is_n_minus_2() {
        for n in 3..=8 {
            let g = generators::complete(n);
            let d = triangle_kcore_decomposition(&g);
            for e in g.edge_ids() {
                assert_eq!(d.kappa(e), n as u32 - 2, "K{n}");
            }
        }
    }

    #[test]
    fn paper_figure_2_example() {
        // Figure 2: vertices A=0,B=1,C=2,D=3,E=4.
        // Edges AB, AC, BC, BD, BE, CD, CE, DE.
        // Expected: κ(AB)=κ(AC)=1, all others 2.
        let g = Graph::from_edges(
            5,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
            ],
        );
        let d = triangle_kcore_decomposition(&g);
        assert_eq!(kappa_of(&g, 0, 1, &d), 1, "AB");
        assert_eq!(kappa_of(&g, 0, 2, &d), 1, "AC");
        for (u, v) in [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)] {
            assert_eq!(kappa_of(&g, u, v, &d), 2, "({u},{v})");
        }
        assert_eq!(d.max_kappa(), 2);
        // Initial support of BC is 3; it is peeled down to 2.
        assert_eq!(d.histogram(), vec![0, 2, 6]);
    }

    #[test]
    fn figure_1b_minimal_triangle_2_core() {
        // Figure 1(b): 5 vertices, every edge in >= 2 triangles using
        // minimal edges — K5 minus a perfect matching is impossible on 5
        // vertices; the paper's minimal construction is K5 minus two
        // disjoint edges (8 edges). Verify it yields κ = 2 everywhere.
        let g = Graph::from_edges(
            5,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (0, 3),
                (0, 4),
            ],
        );
        let d = triangle_kcore_decomposition(&g);
        // This 8-edge graph realizes Triangle K-Core number >= 1 everywhere.
        for e in g.edge_ids() {
            assert!(d.kappa(e) >= 1);
        }
    }

    #[test]
    fn order_is_sorted_by_kappa() {
        let g = generators::planted_partition(3, 8, 0.8, 0.05, 3);
        let d = triangle_kcore_decomposition(&g);
        let ks: Vec<u32> = d.order().iter().map(|&e| d.kappa(e)).collect();
        assert!(ks.windows(2).all(|w| w[0] <= w[1]), "order not monotone");
        assert_eq!(d.order().len(), g.num_edges());
    }

    #[test]
    fn two_disjoint_cliques() {
        let mut g = generators::complete(6);
        let base = g.num_vertices();
        g.add_vertices(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                g.add_edge(VertexId(base as u32 + i), VertexId(base as u32 + j))
                    .unwrap();
            }
        }
        let d = triangle_kcore_decomposition(&g);
        for (e, u, _) in g.edges() {
            let expected = if u.index() < base { 4 } else { 2 };
            assert_eq!(d.kappa(e), expected);
        }
    }

    #[test]
    fn kappa_upper_bounded_by_support() {
        let g = generators::gnp(60, 0.15, 9);
        let sup = tkc_graph::triangles::edge_supports(&g);
        let d = triangle_kcore_decomposition(&g);
        for e in g.edge_ids() {
            assert!(d.kappa(e) <= sup[e.index()]);
        }
    }

    #[test]
    fn decomposition_ignores_dead_slots() {
        let mut g = generators::complete(5);
        let dead = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.remove_edge(dead).unwrap();
        let d = triangle_kcore_decomposition(&g);
        assert_eq!(d.kappa(dead), 0);
        assert_eq!(d.order().len(), 9);
        // K5 minus an edge: the 6 edges among {2,3,4} plus pairs... every
        // remaining edge still has κ = 2 (K4s remain).
        for e in g.edge_ids() {
            assert!(d.kappa(e) >= 2);
        }
    }

    #[test]
    fn histogram_counts_live_edges() {
        let g = generators::complete(4);
        let d = triangle_kcore_decomposition(&g);
        assert_eq!(d.histogram(), vec![0, 0, 6]);
    }

    #[test]
    fn rule_1_recovers_core_triangles() {
        // For every edge, the κ(e) triangles Rule 1 selects must each have
        // both other edges at κ >= κ(e) — i.e., they are a valid witness
        // for the maximum core (Theorem 1).
        for seed in 0..6 {
            let g = generators::gnp(20, 0.3, seed);
            let d = triangle_kcore_decomposition(&g);
            let ranks = d.ranks();
            for e in g.edge_ids() {
                let (u, v) = g.endpoints(e);
                let apexes = core_triangles_of_edge(&g, &d, &ranks, e);
                assert_eq!(apexes.len(), d.kappa(e) as usize, "seed {seed}");
                for w in apexes {
                    let e1 = g.edge_between(u, w).unwrap();
                    let e2 = g.edge_between(v, w).unwrap();
                    assert!(d.kappa(e1) >= d.kappa(e), "rule 1 witness violated");
                    assert!(d.kappa(e2) >= d.kappa(e), "rule 1 witness violated");
                }
            }
        }
    }

    #[test]
    fn ranks_invert_the_order() {
        let g = generators::planted_partition(2, 8, 0.7, 0.1, 3);
        let d = triangle_kcore_decomposition(&g);
        let ranks = d.ranks();
        for (i, &e) in d.order().iter().enumerate() {
            assert_eq!(ranks[e.index()], i);
        }
    }

    #[test]
    fn from_kappa_view_matches_real_decomposition() {
        let mut g = generators::planted_partition(2, 8, 0.7, 0.1, 5);
        // Dead slots in the id space must stay harmless.
        let victim = g.edge_ids().nth(2).unwrap();
        g.remove_edge(victim).unwrap();
        let d = triangle_kcore_decomposition(&g);
        let view = Decomposition::from_kappa(&g, d.kappa_slice().to_vec());
        assert_eq!(view.max_kappa(), d.max_kappa());
        assert_eq!(view.histogram(), d.histogram());
        for e in g.edge_ids() {
            assert_eq!(view.kappa(e), d.kappa(e));
        }
        // Synthesized order is non-decreasing in κ and covers every live edge.
        assert_eq!(view.order().len(), g.num_edges());
        for w in view.order().windows(2) {
            assert!(view.kappa(w[0]) <= view.kappa(w[1]));
        }
    }

    #[test]
    fn into_kappa_matches_accessor() {
        let g = generators::gnp(30, 0.2, 4);
        let d = triangle_kcore_decomposition(&g);
        let by_accessor: Vec<u32> = (0..g.edge_bound() as u32)
            .map(|i| d.kappa(EdgeId(i)))
            .collect();
        assert_eq!(d.into_kappa(), by_accessor);
    }
}
