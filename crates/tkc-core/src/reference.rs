//! Naive reference implementations used as oracles in tests and as the
//! pedagogical "definitionally obvious" versions of the algorithms.
//!
//! These implement Definitions 1–4 by direct iterated pruning. They are
//! quadratic-ish and exist so that the optimized peeling and the dynamic
//! maintenance can be checked against something that is obviously correct.

use tkc_graph::{Graph, VertexId};

/// κ(e) for every edge by direct iterated pruning (Definition 3/4):
/// for k = 1, 2, …, repeatedly delete edges with < k triangles; an edge
/// deleted while pruning toward level k has κ = k − 1.
pub fn naive_kappa(g: &Graph) -> Vec<u32> {
    let mut h = g.clone();
    let mut kappa = vec![0u32; g.edge_bound()];
    let mut k = 1u32;
    while h.num_edges() > 0 {
        loop {
            let doomed: Vec<_> = h
                .edge_ids()
                .filter(|&e| (h.triangles_on_edge(e) as u32) < k)
                .collect();
            if doomed.is_empty() {
                break;
            }
            for e in doomed {
                kappa[e.index()] = k - 1;
                h.remove_edge(e).expect("edge vanished during pruning");
            }
        }
        k += 1;
    }
    kappa
}

/// Vertex core numbers by direct iterated pruning (Definition 1/2).
pub fn naive_core_numbers(g: &Graph) -> Vec<u32> {
    let mut h = g.clone();
    let mut core = vec![0u32; g.num_vertices()];
    let mut k = 1u32;
    while h.num_edges() > 0 {
        loop {
            let doomed: Vec<VertexId> = h
                .vertex_ids()
                .filter(|&v| h.degree(v) > 0 && (h.degree(v) as u32) < k)
                .collect();
            if doomed.is_empty() {
                break;
            }
            for v in doomed {
                core[v.index()] = k - 1;
                let nbrs: Vec<_> = h.neighbors(v).map(|(_, e)| e).collect();
                for e in nbrs {
                    h.remove_edge(e).expect("edge ids collected while live");
                }
            }
        }
        // Vertices still attached survive level k.
        for v in h.vertex_ids() {
            if h.degree(v) > 0 {
                core[v.index()] = k;
            }
        }
        k += 1;
    }
    core
}

/// Checks Definition 3 directly: is the subgraph induced by `edges` a
/// Triangle K-Core of number ≥ `k` (every edge in ≥ k triangles within)?
pub fn is_triangle_kcore(g: &Graph, edges: &[tkc_graph::EdgeId], k: u32) -> bool {
    use tkc_graph::FxHashSet;
    let set: FxHashSet<_> = edges.iter().copied().collect();
    edges.iter().all(|&e| {
        let mut cnt = 0u32;
        g.for_each_triangle_on_edge(e, |_, e1, e2| {
            if set.contains(&e1) && set.contains(&e2) {
                cnt += 1;
            }
        });
        cnt >= k
    })
}

/// Exact maximum clique size containing a given edge, by branch and bound
/// over the common neighborhood. Exponential worst case; for oracle use on
/// small graphs and for the CSV baseline's exact mode.
pub fn max_clique_with_edge(g: &Graph, e: tkc_graph::EdgeId) -> u32 {
    let mut cands: Vec<VertexId> = Vec::new();
    g.for_each_triangle_on_edge(e, |w, _, _| cands.push(w));
    2 + max_clique_in(g, &cands)
}

/// Size of the maximum clique within `cands` (mutual adjacency in `g`).
fn max_clique_in(g: &Graph, cands: &[VertexId]) -> u32 {
    fn bb(g: &Graph, chosen: u32, cands: &[VertexId], best: &mut u32) {
        if chosen + cands.len() as u32 <= *best {
            return; // bound
        }
        if cands.is_empty() {
            *best = (*best).max(chosen);
            return;
        }
        let head = cands[0];
        // Branch 1: include head.
        let next: Vec<VertexId> = cands[1..]
            .iter()
            .copied()
            .filter(|&w| g.has_edge(head, w))
            .collect();
        bb(g, chosen + 1, &next, best);
        // Branch 2: exclude head.
        bb(g, chosen, &cands[1..], best);
    }
    let mut best = 0;
    bb(g, 0, cands, &mut best);
    best
}

/// Exact global maximum clique size (small graphs only).
pub fn max_clique_size(g: &Graph) -> u32 {
    g.edge_ids()
        .map(|e| max_clique_with_edge(g, e))
        .max()
        .unwrap_or_else(|| u32::from(g.num_vertices() > 0))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::decompose::triangle_kcore_decomposition;
    use tkc_graph::generators;

    #[test]
    fn naive_kappa_on_clique() {
        let g = generators::complete(5);
        let kappa = naive_kappa(&g);
        for e in g.edge_ids() {
            assert_eq!(kappa[e.index()], 3);
        }
    }

    #[test]
    fn naive_matches_peeling_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnp(25, 0.3, seed);
            let naive = naive_kappa(&g);
            let fast = triangle_kcore_decomposition(&g);
            for e in g.edge_ids() {
                assert_eq!(naive[e.index()], fast.kappa(e), "seed {seed} edge {e:?}");
            }
        }
    }

    #[test]
    fn naive_core_numbers_on_known_shapes() {
        let g = generators::complete(5);
        assert!(naive_core_numbers(&g).iter().all(|&c| c == 4));
        let g = generators::cycle(6);
        assert!(naive_core_numbers(&g).iter().all(|&c| c == 2));
        let g = generators::star(4);
        let core = naive_core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1));
    }

    #[test]
    fn is_triangle_kcore_checks_definition() {
        let g = generators::complete(4);
        let all: Vec<_> = g.edge_ids().collect();
        assert!(is_triangle_kcore(&g, &all, 2));
        assert!(!is_triangle_kcore(&g, &all, 3));
        // Drop one edge from the set: remaining 5 edges no longer form a
        // 2-core (the opposite edge loses one triangle).
        assert!(!is_triangle_kcore(&g, &all[1..], 2));
        assert!(is_triangle_kcore(&g, &all[1..], 1));
    }

    #[test]
    fn max_clique_on_planted_instance() {
        let mut g = generators::gnp(20, 0.1, 7);
        let members: Vec<_> = [0u32, 3, 7, 11, 15]
            .iter()
            .map(|&i| tkc_graph::VertexId(i))
            .collect();
        generators::plant_clique(&mut g, &members);
        assert!(max_clique_size(&g) >= 5);
        let e = g
            .edge_between(members[0], members[1])
            .expect("planted edge");
        assert!(max_clique_with_edge(&g, e) >= 5);
    }

    #[test]
    fn kappa_plus_two_bounds_max_clique() {
        // κ(e) + 2 is an upper bound for the largest clique containing e.
        let g = generators::planted_partition(2, 10, 0.7, 0.1, 5);
        let d = triangle_kcore_decomposition(&g);
        for e in g.edge_ids() {
            assert!(max_clique_with_edge(&g, e) <= d.kappa(e) + 2);
        }
    }
}
