//! Out-of-core triangle k-core decomposition over a packed store.
//!
//! This is the Wang & Cheng semi-external bottom-up peel (*Truss
//! Decomposition in Massive Networks*, VLDB 2012) adapted to the paper's
//! triangle k-cores: instead of holding the graph, the CSR, and every
//! bucket in RAM like [`crate::decompose`], the graph stays in a
//! `TKCSTOR` file and is paged in on demand, and the peel walks the
//! support axis in **strata** — contiguous support ranges `[lo, hi)`
//! sized so the edges of one stratum fit the resident budget.
//!
//! The moving parts, and what they cost against the hard budget:
//!
//! * the [`StoreReader`] page cache (adjacency + endpoints paging);
//! * one **effective-support scratch file** (`ScratchFile`), a dense
//!   per-edge `u32` behind a small write-back page cache. Decrements
//!   aimed at edges *outside* the current stratum are read-modify-writes
//!   against this file; dirty pages written back on eviction are the
//!   spill of cross-stratum decrements to disk. Keeping the file
//!   authoritative (rather than an in-memory overlay with sorted spill
//!   runs) means a decrement always sees the true current value — which
//!   the correctness of the cascade pull below depends on;
//! * the resident stratum: a bucket queue over `[lo, hi)` plus an
//!   edge → current-support map, and a global peeled bitset.
//!
//! κ equals the in-memory peel bit-for-bit because the processing rule is
//! identical — pop the globally minimum-support unprocessed edge, assign
//! κ = its support, decrement the other two edges of every triangle whose
//! other edges are both unprocessed, clamped at the current level — and
//! κ values are a canonical property of that rule, independent of
//! tie-breaking order within a level. The one subtlety is the **cascade
//! pull**: a decrement can drop an out-of-stratum edge's effective
//! support below `hi`, and that edge must then be peeled *this* stratum
//! (the global minimum rule demands it); the decrement path detects the
//! boundary crossing exactly because the scratch file is authoritative,
//! and pulls the edge into the resident set.

use std::collections::hash_map::Entry;
use std::io;
use std::path::{Path, PathBuf};

use tkc_graph::adjacency::merge_common;
use tkc_graph::{EdgeId, FxHashMap};
use tkc_obs::MetricsRegistry;
use tkc_store::cache::CacheStats;
use tkc_store::format::DEAD_SLOT;
use tkc_store::{PageCacheConfig, ScratchFile, SectionTag, StoreError, StoreReader};

/// High bit of a scratch word: the edge has been peeled and the low 31
/// bits are its κ.
const PEELED: u32 = 1 << 31;
/// Scratch sentinel for a dead edge slot (never peeled, κ reported 0).
const DEAD: u32 = u32::MAX;
/// Estimated resident bytes per edge admitted to a stratum (hash-map
/// entry plus amortized bucket-queue pushes), used for planning only —
/// actual usage is tracked exactly.
const EST_BYTES_PER_EDGE: u64 = 48;
/// Tracked bytes per resident map entry (key + value + hash overhead).
const MAP_ENTRY_BYTES: u64 = 16;
/// Bytes per outstanding bucket-queue entry.
const QUEUE_ENTRY_BYTES: u64 = 4;
/// Bytes per bucket header (an empty `Vec<u32>`).
const BUCKET_HEADER_BYTES: u64 = 24;
/// Support histogram granularity cap (planning pass).
const MAX_HIST_BUCKETS: u64 = 4096;

/// Configuration for [`decompose_ooc`].
#[derive(Debug, Clone)]
pub struct OocConfig {
    /// Hard ceiling on resident working memory: store page cache +
    /// scratch write-back cache + stratum structures + peeled bitset.
    /// (The returned κ vector itself is the *output* and is not charged;
    /// use [`decompose_ooc_streamed`] to keep even that off the heap.)
    pub budget_bytes: u64,
    /// Page size for both caches.
    pub page_size: usize,
    /// Directory for the effective-support scratch file (default: next
    /// to the store).
    pub spill_dir: Option<PathBuf>,
}

impl OocConfig {
    /// A config with the given budget and default 64 KiB pages.
    pub fn with_budget(budget_bytes: u64) -> OocConfig {
        OocConfig {
            budget_bytes,
            page_size: 64 * 1024,
            spill_dir: None,
        }
    }
}

/// Everything [`decompose_ooc`] measures about a run.
#[derive(Debug, Clone, Default)]
pub struct OocStats {
    /// Support strata the peel was split into.
    pub strata: usize,
    /// Edges peeled (equals the store's live edge count on success).
    pub peeled_edges: u64,
    /// Out-of-stratum edges pulled into a stratum by cascading
    /// decrements.
    pub pulled_edges: u64,
    /// Triangles visited across all pops.
    pub triangles: u64,
    /// Peak tracked resident bytes (bitset + histogram + stratum map +
    /// queue), excluding the two fixed-size caches.
    pub peak_tracked_bytes: u64,
    /// Fixed resident bytes reserved by the store page cache.
    pub reader_cache_bytes: u64,
    /// Fixed resident bytes reserved by the scratch write-back cache.
    pub scratch_cache_bytes: u64,
    /// Bytes of dirty scratch pages spilled back to disk.
    pub spilled_bytes: u64,
    /// Store page-cache traffic.
    pub reader_cache: CacheStats,
    /// Scratch cache traffic.
    pub scratch_cache: CacheStats,
}

impl OocStats {
    /// Peak total resident footprint charged against the budget.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_tracked_bytes + self.reader_cache_bytes + self.scratch_cache_bytes
    }
}

/// Result of an out-of-core decomposition.
#[derive(Debug)]
pub struct OocDecomposition {
    /// κ per raw edge slot (0 for dead slots) — identical to
    /// [`crate::decompose::Decomposition::kappa_slice`] on the same
    /// graph.
    pub kappa: Vec<u32>,
    /// Maximum κ over live edges.
    pub max_kappa: u32,
    /// Run measurements.
    pub stats: OocStats,
}

/// Errors out of the out-of-core path.
#[derive(Debug)]
pub enum OocError {
    /// The store could not be read (I/O, checksum, structural).
    Store(StoreError),
    /// Scratch-file I/O failure.
    Io(io::Error),
    /// The budget cannot hold even the fixed structures, or the run
    /// exceeded it.
    Budget(String),
    /// An internal invariant broke (a bug, not a caller error).
    Internal(String),
}

impl std::fmt::Display for OocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OocError::Store(e) => write!(f, "store error: {e}"),
            OocError::Io(e) => write!(f, "scratch io error: {e}"),
            OocError::Budget(m) => write!(f, "budget: {m}"),
            OocError::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for OocError {}

impl From<StoreError> for OocError {
    fn from(e: StoreError) -> Self {
        OocError::Store(e)
    }
}

impl From<io::Error> for OocError {
    fn from(e: io::Error) -> Self {
        OocError::Io(e)
    }
}

/// Decomposes the store at `path` out of core and returns the full κ
/// vector. See [`decompose_ooc_streamed`] for the variant that hands κ
/// out edge-by-edge without materializing the output array.
pub fn decompose_ooc(path: &Path, config: &OocConfig) -> Result<OocDecomposition, OocError> {
    let mut kappa = Vec::new();
    let (max_kappa, stats) = decompose_ooc_streamed(path, config, |e, k| {
        debug_assert_eq!(e as usize, kappa.len());
        let _ = e;
        kappa.push(k);
    })?;
    Ok(OocDecomposition {
        kappa,
        max_kappa,
        stats,
    })
}

/// The streamed core of [`decompose_ooc`]: peels the store at `path`
/// under `config.budget_bytes` of resident memory and calls
/// `sink(edge, κ)` once per edge slot in ascending id order (dead slots
/// get κ = 0). Returns `(max_kappa, stats)`.
pub fn decompose_ooc_streamed(
    path: &Path,
    config: &OocConfig,
    mut sink: impl FnMut(u32, u32),
) -> Result<(u32, OocStats), OocError> {
    let reg = MetricsRegistry::global();
    let strata_total = reg.counter(
        "tkc_ooc_strata_total",
        "Support strata processed by out-of-core decompositions",
    );
    let pulled_total = reg.counter(
        "tkc_ooc_pulled_edges_total",
        "Edges pulled across a stratum boundary by cascading decrements",
    );
    let peak_gauge = reg.gauge(
        "tkc_ooc_peak_resident_bytes",
        "Peak resident working-set bytes of the last out-of-core decomposition",
    );

    let budget = config.budget_bytes;
    let page = config.page_size.clamp(512, 1 << 20);

    // Budget split: ~35% store page cache, ~25% scratch write-back
    // cache, the rest for tracked stratum structures. Caches are
    // fixed-size, so only the tracked share needs runtime enforcement.
    let reader_cache_budget = (budget * 35 / 100).max(page as u64);
    let reader_config = PageCacheConfig::with_budget(page, reader_cache_budget);
    let reader = StoreReader::open(path, reader_config)?;
    // Paged reads are not per-access checksummed; verify everything once
    // up front so the peel runs over vouched-for bytes.
    reader.verify_checksums()?;

    let bound = reader.edge_bound() as u64;
    let live = reader.num_edges() as u64;

    let scratch_need = bound * 4 + page as u64;
    let scratch_cache_budget = (budget / 4).min(scratch_need).max(page as u64);
    let page_words = page / 4;
    let scratch_pages = usize::try_from(scratch_cache_budget / (page as u64))
        .unwrap_or(1)
        .max(1);

    let reader_cache_bytes = reader_config.budget_bytes();
    let scratch_cache_bytes = (page_words as u64 * 4) * scratch_pages as u64;
    let bitset_bytes = bound.div_ceil(64) * 8;
    let tracked_share = budget.saturating_sub(reader_cache_bytes + scratch_cache_bytes);
    // Plausibility floor: the peeled bitset plus a token stratum. (The
    // real enforcement is the exact tracking below — an undersized but
    // plausible budget fails there with the same structured error.)
    let fixed_floor = bitset_bytes + 16 * 1024;
    if tracked_share < fixed_floor {
        return Err(OocError::Budget(format!(
            "budget {budget}B leaves {tracked_share}B for stratum structures; \
             this graph needs at least {fixed_floor}B (peeled bitset \
             {bitset_bytes}B + a minimal stratum)"
        )));
    }

    let mut stats = OocStats {
        reader_cache_bytes,
        scratch_cache_bytes,
        ..OocStats::default()
    };

    if live == 0 {
        // Nothing to peel; every slot (if any) is dead.
        for e in 0..bound {
            sink(e as u32, 0);
        }
        stats.reader_cache = reader.cache_stats();
        return Ok((0, stats));
    }

    // ---- Pass A: dead-slot bitmap (doubles as the peeled bitset: dead
    // slots are "peeled at birth" with κ 0 and never enter a stratum).
    let mut peeled: Vec<u64> = vec![0; bound.div_ceil(64) as usize];
    {
        let mut e = 0u64;
        reader.stream_section(SectionTag::Edges, |chunk| {
            if chunk.len() % 8 != 0 {
                return Err(StoreError::Corrupt("EDGE stream misaligned".into()));
            }
            for pair in chunk.chunks_exact(8) {
                let word = |b: &[u8]| {
                    b.try_into()
                        .map(u32::from_le_bytes)
                        .map_err(|_| StoreError::Corrupt("EDGE chunk truncated".into()))
                };
                let (u, v) = (word(&pair[..4])?, word(&pair[4..])?);
                if u == DEAD_SLOT && v == DEAD_SLOT {
                    set_bit(&mut peeled, e);
                }
                e += 1;
            }
            Ok(())
        })?;
        if e != bound {
            return Err(StoreError::Corrupt(format!(
                "EDGE section holds {e} slots, header claims {bound}"
            ))
            .into());
        }
    }

    // ---- Pass B1: max support over live edges (sizes the histogram).
    let mut max_sup = 0u32;
    {
        let mut e = 0u64;
        reader.stream_section(SectionTag::Supports, |chunk| {
            for w in chunk.chunks_exact(4) {
                let s = w
                    .try_into()
                    .map(u32::from_le_bytes)
                    .map_err(|_| StoreError::Corrupt("SUPP chunk truncated".into()))?;
                if !get_bit(&peeled, e) {
                    max_sup = max_sup.max(s);
                }
                e += 1;
            }
            Ok(())
        })?;
        if e != bound {
            return Err(StoreError::Corrupt(format!(
                "SUPP section holds {e} slots, header claims {bound}"
            ))
            .into());
        }
    }
    if max_sup >= PEELED {
        return Err(OocError::Internal(format!(
            "support {max_sup} collides with the peeled tag bit"
        )));
    }

    // ---- Pass B2: write the effective-support scratch file
    // sequentially (live edges: initial support; dead slots: sentinel)
    // and build the support histogram that plans the strata.
    let hist_width = (u64::from(max_sup) + 1).div_ceil(MAX_HIST_BUCKETS).max(1);
    let hist_len = ((u64::from(max_sup) + 1).div_ceil(hist_width)) as usize;
    let mut hist = vec![0u64; hist_len];
    let spill_dir = match &config.spill_dir {
        Some(d) => d.clone(),
        None => path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from(".")),
    };
    let eff_path = spill_dir.join(format!(
        "{}.effsup",
        path.file_name().and_then(|s| s.to_str()).unwrap_or("store")
    ));
    {
        use std::io::Write;
        let file = std::fs::File::create(&eff_path)?;
        let mut w = io::BufWriter::with_capacity(1 << 16, file);
        let mut e = 0u64;
        let mut io_err: Option<io::Error> = None;
        reader.stream_section(SectionTag::Supports, |chunk| {
            for word in chunk.chunks_exact(4) {
                let s = word
                    .try_into()
                    .map(u32::from_le_bytes)
                    .map_err(|_| StoreError::Corrupt("SUPP chunk truncated".into()))?;
                let val = if get_bit(&peeled, e) {
                    DEAD
                } else {
                    if let Some(h) = hist.get_mut((u64::from(s) / hist_width) as usize) {
                        *h += 1;
                    }
                    s
                };
                if let Err(err) = w.write_all(&val.to_le_bytes()) {
                    io_err = Some(err);
                    return Err(StoreError::Corrupt("scratch init write failed".into()));
                }
                e += 1;
            }
            Ok(())
        })?;
        if let Some(err) = io_err {
            return Err(err.into());
        }
        w.flush()?;
    }
    let mut eff = ScratchFile::open(&eff_path, bound, page_words, scratch_pages)?;

    // ---- Stratum planning: accumulate histogram buckets until the
    // estimated resident cost (edges + bucket headers for the support
    // width) would exceed half the tracked share — the other half is
    // headroom for cascade pulls.
    let hist_bytes = hist.len() as u64 * 8;
    let plan_share = tracked_share.saturating_sub(bitset_bytes + hist_bytes) / 2;
    let mut strata: Vec<(u32, u32)> = Vec::new();
    {
        let mut b = 0usize;
        while b < hist.len() {
            let lo = b as u64 * hist_width;
            let mut edges = 0u64;
            let mut end = b;
            while end < hist.len() {
                let next_edges = edges + hist.get(end).copied().unwrap_or(0);
                let width = (end - b + 1) as u64 * hist_width;
                let cost = next_edges * EST_BYTES_PER_EDGE + width * BUCKET_HEADER_BYTES;
                if end > b && cost > plan_share {
                    break;
                }
                edges = next_edges;
                end += 1;
            }
            let hi = (end as u64 * hist_width).min(u64::from(max_sup) + 1);
            strata.push((clamp_u32(lo), clamp_u32(hi)));
            b = end;
        }
    }
    if strata.is_empty() {
        strata.push((0, max_sup.saturating_add(1)));
    }

    // ---- The peel itself, one stratum at a time.
    let mut resident: FxHashMap<u32, u32> = FxHashMap::default();
    let mut peeled_count = 0u64;
    let mut max_kappa = 0u32;
    let mut la: Vec<(u32, EdgeId)> = Vec::new();
    let mut lb: Vec<(u32, EdgeId)> = Vec::new();
    let mut queued_entries = 0u64;
    let track_peak = |resident_len: u64, queued: u64, bucket_hdrs: u64, peak: &mut u64| {
        let now = bitset_bytes
            + hist_bytes
            + resident_len * MAP_ENTRY_BYTES
            + queued * QUEUE_ENTRY_BYTES
            + bucket_hdrs * BUCKET_HEADER_BYTES;
        if now > *peak {
            *peak = now;
        }
        now
    };

    for &(lo, hi) in &strata {
        stats.strata += 1;
        strata_total.inc();
        let width = (hi - lo) as usize;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); width];

        // Admit every unpeeled edge whose current effective support
        // falls in [lo, hi).
        let mut scan_err: Option<OocError> = None;
        eff.for_each(|e, val| {
            if scan_err.is_some() || val == DEAD || val & PEELED != 0 {
                return;
            }
            if val < lo {
                scan_err = Some(OocError::Internal(format!(
                    "edge {e} has effective support {val} below stratum floor {lo}"
                )));
                return;
            }
            if val < hi {
                resident.insert(e as u32, val);
                if let Some(bucket) = buckets.get_mut((val - lo) as usize) {
                    bucket.push(e as u32);
                    queued_entries += 1;
                }
            }
        })?;
        if let Some(err) = scan_err {
            return Err(err);
        }
        let now = track_peak(
            resident.len() as u64,
            queued_entries,
            width as u64,
            &mut stats.peak_tracked_bytes,
        );
        if now > tracked_share {
            return Err(OocError::Budget(format!(
                "stratum [{lo}, {hi}) needs {now}B tracked, budget leaves {tracked_share}B"
            )));
        }

        for k in lo..hi {
            while let Some(e) = buckets
                .get_mut((k - lo) as usize)
                .and_then(|bucket| bucket.pop())
            {
                queued_entries = queued_entries.saturating_sub(1);
                if get_bit(&peeled, u64::from(e)) {
                    continue; // stale queue entry for an already-peeled edge
                }
                match resident.get(&e) {
                    Some(&cur) if cur == k => {}
                    _ => continue, // stale entry; the edge lives in a lower bucket
                }
                // Pop: κ(e) = k.
                resident.remove(&e);
                set_bit(&mut peeled, u64::from(e));
                eff.write_u32(u64::from(e), PEELED | k)?;
                peeled_count += 1;
                max_kappa = max_kappa.max(k);

                // Enumerate triangles on e from the paged adjacency and
                // decrement the other two edges of each unprocessed one.
                let (u, v) = reader.endpoints(e)?.ok_or_else(|| {
                    OocError::Internal(format!("live edge {e} has a dead endpoint record"))
                })?;
                reader.neighbors(u, &mut la)?;
                reader.neighbors(v, &mut lb)?;
                let mut pending: Option<Result<(), OocError>> = None;
                merge_common(&la, &lb, |_w, e1, e2| {
                    if pending.is_some() {
                        return;
                    }
                    stats.triangles += 1;
                    if get_bit(&peeled, u64::from(e1.0)) || get_bit(&peeled, u64::from(e2.0)) {
                        return; // triangle already consumed by an earlier pop
                    }
                    for x in [e1.0, e2.0] {
                        let sx = match resident.get(&x) {
                            Some(&s) => s,
                            None => match eff.read_u32(u64::from(x)) {
                                Ok(s) => s,
                                Err(err) => {
                                    pending = Some(Err(OocError::Io(err)));
                                    return;
                                }
                            },
                        };
                        if sx & PEELED != 0 || sx == DEAD {
                            pending = Some(Err(OocError::Internal(format!(
                                "unpeeled edge {x} carries tagged support {sx:#x}"
                            ))));
                            return;
                        }
                        if sx <= k {
                            continue; // clamped at the current level
                        }
                        let nv = sx - 1;
                        match resident.entry(x) {
                            Entry::Occupied(mut slot) => {
                                slot.insert(nv);
                                if let Some(bucket) = buckets.get_mut((nv - lo) as usize) {
                                    bucket.push(x);
                                    queued_entries += 1;
                                }
                            }
                            Entry::Vacant(slot) if nv < hi => {
                                // Cascade pull: the decrement dropped this
                                // edge below the stratum ceiling, so it must
                                // be peeled in this stratum to preserve the
                                // global minimum-support pop order.
                                slot.insert(nv);
                                if let Some(bucket) = buckets.get_mut((nv - lo) as usize) {
                                    bucket.push(x);
                                    queued_entries += 1;
                                }
                                stats.pulled_edges += 1;
                                pulled_total.inc();
                            }
                            Entry::Vacant(_) => {
                                if let Err(err) = eff.write_u32(u64::from(x), nv) {
                                    pending = Some(Err(OocError::Io(err)));
                                    return;
                                }
                            }
                        }
                    }
                });
                if let Some(res) = pending {
                    res?;
                }
                let now = track_peak(
                    resident.len() as u64,
                    queued_entries,
                    width as u64,
                    &mut stats.peak_tracked_bytes,
                );
                if now > tracked_share {
                    return Err(OocError::Budget(format!(
                        "cascade pulls grew stratum [{lo}, {hi}) to {now}B tracked, \
                         budget leaves {tracked_share}B"
                    )));
                }
            }
        }
        if !resident.is_empty() {
            return Err(OocError::Internal(format!(
                "{} resident edges left unpeeled at the end of stratum [{lo}, {hi})",
                resident.len()
            )));
        }
        queued_entries = 0;
    }

    if peeled_count != live {
        return Err(OocError::Internal(format!(
            "peeled {peeled_count} of {live} live edges"
        )));
    }

    // ---- Emit κ in edge-id order from the scratch file.
    let mut emit_err: Option<OocError> = None;
    eff.for_each(|e, val| {
        if emit_err.is_some() {
            return;
        }
        if val == DEAD {
            sink(e as u32, 0);
        } else if val & PEELED != 0 {
            sink(e as u32, val & !PEELED);
        } else {
            emit_err = Some(OocError::Internal(format!(
                "edge {e} left unpeeled with effective support {val}"
            )));
        }
    })?;
    if let Some(err) = emit_err {
        return Err(err);
    }

    stats.peeled_edges = peeled_count;
    stats.spilled_bytes = eff.spilled_bytes();
    stats.scratch_cache = eff.stats();
    stats.reader_cache = reader.cache_stats();
    peak_gauge.set(stats.peak_resident_bytes() as f64);
    eff.remove()?;
    Ok((max_kappa, stats))
}

fn set_bit(bits: &mut [u64], i: u64) {
    if let Some(w) = bits.get_mut((i / 64) as usize) {
        *w |= 1 << (i % 64);
    }
}

fn get_bit(bits: &[u64], i: u64) -> bool {
    bits.get((i / 64) as usize)
        .map(|w| w & (1 << (i % 64)) != 0)
        .unwrap_or(false)
}

fn clamp_u32(v: u64) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::decompose::triangle_kcore_decomposition;
    use tkc_graph::csr::edge_supports_csr;
    use tkc_graph::{generators, Graph};
    use tkc_store::pack_graph;

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join("tkc_core_ooc_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pack_to(g: &Graph, name: &str) -> PathBuf {
        let sup = edge_supports_csr(g);
        let parts = pack_graph(g, &sup, None).unwrap();
        let path = temp_dir().join(name);
        parts.write_path(&path).unwrap();
        path
    }

    fn assert_ooc_matches(g: &Graph, name: &str, budget: u64) {
        let path = pack_to(g, name);
        let d = triangle_kcore_decomposition(g);
        let config = OocConfig {
            budget_bytes: budget,
            page_size: 4096,
            spill_dir: Some(temp_dir()),
        };
        let ooc = decompose_ooc(&path, &config).unwrap();
        assert_eq!(ooc.kappa, d.kappa_slice(), "{name}: κ mismatch");
        assert_eq!(ooc.max_kappa, d.max_kappa(), "{name}: max κ mismatch");
        assert_eq!(ooc.stats.peeled_edges, g.num_edges() as u64);
        assert_eq!(ooc.stats.strata >= 1, g.num_edges() > 0);
        assert!(
            ooc.stats.peak_resident_bytes() <= budget,
            "{name}: peak {} exceeds budget {budget}",
            ooc.stats.peak_resident_bytes()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ooc_matches_in_memory_on_generator_graphs() {
        assert_ooc_matches(&generators::complete(20), "ooc_complete.tkcstor", 1 << 20);
        assert_ooc_matches(
            &generators::planted_partition(4, 15, 0.8, 0.1, 7),
            "ooc_planted.tkcstor",
            1 << 20,
        );
        assert_ooc_matches(
            &generators::connected_caveman(6, 8),
            "ooc_caveman.tkcstor",
            1 << 20,
        );
    }

    #[test]
    fn ooc_handles_churned_graphs_with_dead_slots() {
        let mut g = generators::holme_kim(300, 4, 0.6, 19);
        let victims: Vec<tkc_graph::EdgeId> = g.edge_ids().step_by(4).collect();
        for e in victims {
            g.remove_edge(e).unwrap();
        }
        g.try_add_edge(tkc_graph::VertexId(0), tkc_graph::VertexId(250));
        g.try_add_edge(tkc_graph::VertexId(1), tkc_graph::VertexId(299));
        assert_ooc_matches(&g, "ooc_churn.tkcstor", 1 << 20);
    }

    #[test]
    fn tight_budget_forces_multiple_strata_and_still_matches() {
        // A graph with a wide support spread (dense cores + sparse
        // periphery) under a budget small enough that one stratum cannot
        // hold everything.
        let g = generators::planted_partition(6, 25, 0.85, 0.02, 31);
        let path = pack_to(&g, "ooc_tight.tkcstor");
        let d = triangle_kcore_decomposition(&g);
        let config = OocConfig {
            budget_bytes: 220 * 1024,
            page_size: 1024,
            spill_dir: Some(temp_dir()),
        };
        let ooc = decompose_ooc(&path, &config).unwrap();
        assert_eq!(ooc.kappa, d.kappa_slice());
        assert!(
            ooc.stats.strata > 1,
            "budget was meant to force multiple strata, got {:?}",
            ooc.stats
        );
        assert!(ooc.stats.peak_resident_bytes() <= 220 * 1024);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_triangle_free_graphs() {
        assert_ooc_matches(&Graph::new(), "ooc_empty.tkcstor", 1 << 20);
        assert_ooc_matches(&generators::star(30), "ooc_star.tkcstor", 1 << 20);
    }

    #[test]
    fn absurdly_small_budget_is_a_structured_error() {
        let g = generators::complete(12);
        let path = pack_to(&g, "ooc_nobudget.tkcstor");
        let config = OocConfig {
            budget_bytes: 1024,
            page_size: 512,
            spill_dir: Some(temp_dir()),
        };
        match decompose_ooc(&path, &config) {
            Err(OocError::Budget(_)) => {}
            other => panic!("expected Budget error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
