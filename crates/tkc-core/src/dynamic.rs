//! Incremental maintenance of all κ(e) under edge insertions and deletions
//! — the paper's Algorithm 2, with the appendix's Algorithms 5–7 realized
//! through the per-triangle discipline its correctness proof rests on:
//!
//! * **Rule 0**: when a single triangle appears or disappears, only edges
//!   whose κ equals μ — the minimum κ over the triangle's three edges — can
//!   change, and they change by exactly 1 (Lemmas 1–2).
//!
//! We therefore process one triangle at a time. An inserted edge enters the
//! graph with all of its triangles *inactive* (excluded from support
//! counting, so its κ correctly starts at 0); activating a triangle runs a
//! *promote closure* at level μ. Deleting an edge first *deactivates* its
//! triangles one at a time (each a *demote cascade* at level μ) and only
//! then removes the edge. After every public operation the maintained κ
//! vector equals what Algorithm 1 would compute from scratch — a property
//! the test-suite checks exhaustively on random edit scripts.

use tkc_graph::{EdgeId, FxHashMap, FxHashSet, Graph, GraphError, VertexId};

use crate::decompose::triangle_kcore_decomposition;

/// Cheap operation counters, exposed so the Table III harness and the
/// ablation benches can report *why* updates are fast.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Triangles activated (edge insertions).
    pub triangles_added: u64,
    /// Triangles deactivated (edge deletions).
    pub triangles_removed: u64,
    /// Edges whose κ increased.
    pub promotions: u64,
    /// Edges whose κ decreased.
    pub demotions: u64,
    /// Candidate edges examined across all closures.
    pub edges_examined: u64,
}

impl UpdateStats {
    /// Merges another counter set into this one.
    pub fn absorb(&mut self, other: UpdateStats) {
        self.triangles_added += other.triangles_added;
        self.triangles_removed += other.triangles_removed;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.edges_examined += other.edges_examined;
    }
}

/// A graph together with incrementally-maintained κ(e) for every edge.
///
/// # Examples
///
/// ```
/// use tkc_graph::{generators, VertexId};
/// use tkc_core::dynamic::DynamicTriangleKCore;
///
/// // K4 minus one edge: κ = 1 everywhere; adding the missing edge lifts
/// // the whole subgraph to κ = 2 (it becomes K4).
/// let mut g = generators::complete(4);
/// g.remove_edge_between(VertexId(0), VertexId(1)).unwrap();
/// let mut dyn_core = DynamicTriangleKCore::new(g);
/// let e = dyn_core.insert_edge(VertexId(0), VertexId(1)).unwrap();
/// assert_eq!(dyn_core.kappa(e), 2);
/// assert!(dyn_core.graph().edge_ids().all(|e| dyn_core.kappa(e) == 2));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicTriangleKCore {
    g: Graph,
    kappa: Vec<u32>,
    stats: UpdateStats,
    scratch: Scratch,
}

/// Reusable stamped scratch arrays: `x_stamp[e] == stamp` means the entry
/// is valid for the current closure. Bumping `stamp` clears everything in
/// O(1); the arrays are sized to the edge bound and persist across
/// operations so the hot loops do no hashing and no allocation.
#[derive(Debug, Clone, Default)]
struct Scratch {
    stamp: u32,
    supp_stamp: Vec<u32>,
    supp_val: Vec<u32>,
    seen_stamp: Vec<u32>,
    state_stamp: Vec<u32>,
    state_val: Vec<u8>,
    s_stamp: Vec<u32>,
    s_val: Vec<u32>,
    tri_buf: Vec<(VertexId, EdgeId, EdgeId)>,
}

impl Scratch {
    fn begin(&mut self, bound: usize) {
        if self.supp_stamp.len() < bound {
            self.supp_stamp.resize(bound, 0);
            self.supp_val.resize(bound, 0);
            self.seen_stamp.resize(bound, 0);
            self.state_stamp.resize(bound, 0);
            self.state_val.resize(bound, 0);
            self.s_stamp.resize(bound, 0);
            self.s_val.resize(bound, 0);
        }
        if self.stamp == u32::MAX {
            self.supp_stamp.fill(0);
            self.seen_stamp.fill(0);
            self.state_stamp.fill(0);
            self.s_stamp.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
    }
}

/// Sorted vertex triple identifying a triangle during a single update.
type Triple = [VertexId; 3];

fn triple(a: VertexId, b: VertexId, c: VertexId) -> Triple {
    let mut t = [a, b, c];
    t.sort_unstable();
    t
}

impl DynamicTriangleKCore {
    /// Takes ownership of a graph and runs Algorithm 1 once to seed κ.
    pub fn new(g: Graph) -> Self {
        let kappa = triangle_kcore_decomposition(&g).into_kappa();
        DynamicTriangleKCore {
            g,
            kappa,
            stats: UpdateStats::default(),
            scratch: Scratch::default(),
        }
    }

    /// Wraps a graph with a precomputed κ vector (must come from
    /// [`triangle_kcore_decomposition`] of the same graph).
    pub fn from_parts(g: Graph, kappa: Vec<u32>) -> Self {
        assert!(
            kappa.len() >= g.edge_bound(),
            "kappa vector shorter than edge bound"
        );
        DynamicTriangleKCore {
            g,
            kappa,
            stats: UpdateStats::default(),
            scratch: Scratch::default(),
        }
    }

    /// The underlying graph (read-only; mutate through this wrapper).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Maintained κ of a live edge.
    #[inline]
    pub fn kappa(&self, e: EdgeId) -> u32 {
        self.kappa[e.index()]
    }

    /// The κ vector indexed by raw edge id (dead slots read 0).
    #[inline]
    pub fn kappa_slice(&self) -> &[u32] {
        &self.kappa
    }

    /// Accumulated operation counters.
    #[inline]
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = UpdateStats::default();
    }

    /// Consumes the maintainer, returning graph and κ vector.
    pub fn into_parts(self) -> (Graph, Vec<u32>) {
        (self.g, self.kappa)
    }

    /// Grows the vertex set (ids are dense; new vertices are isolated).
    pub fn add_vertices(&mut self, n: usize) {
        self.g.add_vertices(n);
    }

    /// Inserts edge `{u, v}` and incrementally updates κ (Algorithm 5).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        let e = self.g.add_edge(u, v)?;
        if self.kappa.len() < self.g.edge_bound() {
            self.kappa.resize(self.g.edge_bound(), 0);
        }
        // A new edge with no *active* triangles has κ = 0.
        self.kappa[e.index()] = 0;

        // Collect the created triangles, then activate them one at a time.
        let mut new_triangles: Vec<(Triple, [EdgeId; 3])> = Vec::new();
        self.g.for_each_triangle_on_edge(e, |w, e_uw, e_vw| {
            new_triangles.push((triple(u, v, w), [e, e_uw, e_vw]));
        });
        let mut inactive: FxHashSet<Triple> = new_triangles.iter().map(|&(t, _)| t).collect();

        for (t, edges) in new_triangles {
            inactive.remove(&t);
            self.stats.triangles_added += 1;
            self.activate_triangle(edges, &inactive);
        }
        Ok(e)
    }

    /// Removes edge `{u, v}` and incrementally updates κ (Algorithm 7).
    pub fn remove_edge_between(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        let e = self
            .g
            .edge_between(u, v)
            .ok_or(GraphError::MissingEdge(u, v))?;
        self.remove_edge(e)?;
        Ok(e)
    }

    /// Removes live edge `e` and incrementally updates κ (Algorithm 7).
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        let (u, v) = self
            .g
            .endpoints_checked(e)
            .ok_or(GraphError::MissingEdge(VertexId(0), VertexId(0)))?;
        // Deactivate each dying triangle one at a time; the edge itself
        // stays in the graph (with maintained κ) until the end, exactly as
        // in Algorithm 7 where t_del's edges include the dying edge.
        let mut dying: Vec<(Triple, [EdgeId; 3])> = Vec::new();
        self.g.for_each_triangle_on_edge(e, |w, e_uw, e_vw| {
            dying.push((triple(u, v, w), [e, e_uw, e_vw]));
        });
        let mut inactive: FxHashSet<Triple> = FxHashSet::default();
        for (t, edges) in dying {
            inactive.insert(t);
            self.stats.triangles_removed += 1;
            self.deactivate_triangle(edges, &inactive);
        }
        self.g.remove_edge(e)?;
        self.kappa[e.index()] = 0;
        Ok(())
    }

    /// Removes every edge incident to `v` (vertex departure), maintaining
    /// κ through each removal. Returns the number of edges removed.
    pub fn isolate_vertex(&mut self, v: VertexId) -> usize {
        let incident: Vec<EdgeId> = self.g.neighbors(v).map(|(_, e)| e).collect();
        let n = incident.len();
        for e in incident {
            self.remove_edge(e).expect("incident edge must be live");
        }
        n
    }

    /// Applies a batch of operations; unknown removals and duplicate
    /// insertions are skipped. Returns `(inserted, removed)` counts.
    pub fn apply_batch<I>(&mut self, ops: I) -> (usize, usize)
    where
        I: IntoIterator<Item = BatchOp>,
    {
        let (mut ins, mut del) = (0, 0);
        for op in ops {
            match op {
                BatchOp::Insert(u, v) => {
                    if self.g.contains_vertex(u)
                        && self.g.contains_vertex(v)
                        && u != v
                        && !self.g.has_edge(u, v)
                        && self.insert_edge(u, v).is_ok()
                    {
                        ins += 1;
                    }
                }
                BatchOp::Remove(u, v) => {
                    if self.remove_edge_between(u, v).is_ok() {
                        del += 1;
                    }
                }
            }
        }
        (ins, del)
    }

    /// Counts the *active* triangles on `f` whose other two edges satisfy
    /// `ok`, where active means not in `inactive`.
    fn count_active<F>(&self, f: EdgeId, inactive: &FxHashSet<Triple>, ok: F) -> u32
    where
        F: Fn(EdgeId) -> bool,
    {
        self.count_active_capped(f, inactive, ok, u32::MAX)
    }

    /// Like [`Self::count_active`] but stops as soon as `cap` qualifying
    /// triangles are found — for pure threshold tests (`> μ`?) on hub
    /// edges with hundreds of triangles, this turns O(deg) into O(μ)-ish.
    fn count_active_capped<F>(
        &self,
        f: EdgeId,
        inactive: &FxHashSet<Triple>,
        ok: F,
        cap: u32,
    ) -> u32
    where
        F: Fn(EdgeId) -> bool,
    {
        let (x, y) = self.g.endpoints(f);
        let mut n = 0;
        self.g.for_each_triangle_on_edge_while(f, |w, e1, e2| {
            if ok(e1) && ok(e2) && (inactive.is_empty() || !inactive.contains(&triple(x, y, w))) {
                n += 1;
            }
            n < cap
        });
        n
    }

    /// Promote closure at level μ = min κ of the activated triangle's
    /// edges: the exact set of level-μ edges whose κ rises to μ+1.
    ///
    /// The traversal integrates the peel: an edge *qualifies* as a
    /// potential supporter when `κ > μ`, or when it sits at level μ, has
    /// optimistic support `supp > μ` (triangles whose others are ≥ μ — a
    /// frozen quantity within one closure) and has not been eliminated.
    /// Qualification only decays, so each edge's support count can be
    /// maintained exactly under eliminations, eliminations cascade
    /// immediately, and expansion never proceeds through edges that cannot
    /// be promoted. When the traversal drains, the surviving candidates
    /// are exactly the peel fixpoint — no post-pass needed.
    fn activate_triangle(&mut self, tri_edges: [EdgeId; 3], inactive: &FxHashSet<Triple>) {
        let [ea, eb, ec] = tri_edges;
        let mu = self.kappa[ea.index()]
            .min(self.kappa[eb.index()])
            .min(self.kappa[ec.index()]);
        #[cfg(feature = "check-invariants")]
        let kappa_before = self.kappa.clone();

        // Stamped scratch: per-closure state with O(1) reset and no hashing
        // in the hot loops.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.begin(self.g.edge_bound());
        let stamp = scratch.stamp;

        const ALIVE: u8 = 1;
        const DEAD: u8 = 2;
        macro_rules! state {
            ($x:expr) => {{
                let x: EdgeId = $x;
                if scratch.state_stamp[x.index()] == stamp {
                    scratch.state_val[x.index()]
                } else {
                    0 // unvisited
                }
            }};
        }
        macro_rules! set_state {
            ($x:expr, $v:expr) => {{
                let x: EdgeId = $x;
                scratch.state_stamp[x.index()] = stamp;
                scratch.state_val[x.index()] = $v;
            }};
        }
        // Optimistic level-μ support, memoized and capped at μ+1 (only the
        // "> μ" comparison matters). Frozen during the closure.
        macro_rules! supp {
            ($x:expr) => {{
                let x: EdgeId = $x;
                if scratch.supp_stamp[x.index()] == stamp {
                    scratch.supp_val[x.index()]
                } else {
                    let v = self.count_active_capped(
                        x,
                        inactive,
                        |y| self.kappa[y.index()] >= mu,
                        mu + 1,
                    );
                    scratch.supp_stamp[x.index()] = stamp;
                    scratch.supp_val[x.index()] = v;
                    v
                }
            }};
        }
        // A potential supporter right now: settled higher edge, or a
        // non-eliminated, non-tight level-μ edge.
        macro_rules! qual {
            ($x:expr) => {{
                let x: EdgeId = $x;
                if self.kappa[x.index()] > mu {
                    true
                } else {
                    state!(x) != DEAD && supp!(x) > mu
                }
            }};
        }

        let mut visit_stack: Vec<EdgeId> = Vec::new();
        for &x in &tri_edges {
            if self.kappa[x.index()] == mu && scratch.seen_stamp[x.index()] != stamp {
                scratch.seen_stamp[x.index()] = stamp;
                visit_stack.push(x);
            }
        }
        let mut tris = std::mem::take(&mut scratch.tri_buf);
        let mut elim_stack: Vec<EdgeId> = Vec::new();
        let mut candidates: Vec<EdgeId> = Vec::new();
        // Death sequence numbers attribute each invalidated triangle to the
        // *earliest-dying* of its members, so simultaneous deaths within
        // one cascade step still deduct every affected support exactly
        // once. A dead edge's sequence lives in its (no longer needed)
        // `s_val` slot.
        let mut death_counter: u32 = 0;

        while let Some(f) = visit_stack.pop() {
            if state!(f) != 0 {
                continue; // eliminated while queued
            }
            self.stats.edges_examined += 1;
            if supp!(f) <= mu {
                // Tight: never qualified, so no neighbor counted triangles
                // through it — die without cascading.
                set_state!(f, DEAD);
                scratch.s_stamp[f.index()] = stamp;
                scratch.s_val[f.index()] = death_counter;
                death_counter += 1;
                continue;
            }
            // Exact current support: active triangles with both others
            // qualified. Counted triangles' unvisited level-μ members are
            // pushed so the optimism in `qual` resolves by termination.
            let (fu, fv) = self.g.endpoints(f);
            tris.clear();
            self.g.for_each_triangle_on_edge(f, |w, e1, e2| {
                tris.push((w, e1, e2));
            });
            let mut s = 0u32;
            let push_from = visit_stack.len();
            for &(w, e1, e2) in &tris {
                if !inactive.is_empty() && inactive.contains(&triple(fu, fv, w)) {
                    continue;
                }
                if qual!(e1) && qual!(e2) {
                    s += 1;
                    for x in [e1, e2] {
                        if self.kappa[x.index()] == mu && scratch.seen_stamp[x.index()] != stamp {
                            scratch.seen_stamp[x.index()] = stamp;
                            visit_stack.push(x);
                        }
                    }
                }
            }
            scratch.s_stamp[f.index()] = stamp;
            if s <= mu {
                // Cannot be promoted. Retract this visit's own pushes — a
                // promotable edge is always rediscoverable through the
                // promoted set itself (P-connectivity), so candidates only
                // reachable through a dead edge need not be explored.
                for &x in &visit_stack[push_from..] {
                    scratch.seen_stamp[x.index()] = stamp.wrapping_sub(1);
                }
                visit_stack.truncate(push_from);
                // Neighbors may have counted triangles through f (it was
                // qualified until now): cascade.
                set_state!(f, DEAD);
                scratch.s_val[f.index()] = death_counter;
                death_counter += 1;
                elim_stack.push(f);
                self.cascade_eliminations(
                    &mut elim_stack,
                    &mut scratch,
                    stamp,
                    mu,
                    inactive,
                    &mut tris,
                    &mut death_counter,
                );
            } else {
                set_state!(f, ALIVE);
                scratch.s_val[f.index()] = s;
                candidates.push(f);
            }
        }

        // Survivors are promoted to μ + 1.
        for f in candidates {
            if scratch.state_stamp[f.index()] == stamp && scratch.state_val[f.index()] == ALIVE {
                self.kappa[f.index()] = mu + 1;
                self.stats.promotions += 1;
            }
        }
        scratch.tri_buf = tris;
        self.scratch = scratch;
        #[cfg(feature = "check-invariants")]
        self.debug_check_rule0(&kappa_before, mu, true);
    }

    /// Rule 0 locality audit (`check-invariants` builds only): after one
    /// triangle activation/deactivation at level μ, every κ change across
    /// the whole graph must be exactly ±1 and confined to edges that sat
    /// at level μ before the closure ran.
    #[cfg(feature = "check-invariants")]
    fn debug_check_rule0(&self, before: &[u32], mu: u32, rising: bool) {
        let expected = if rising { mu + 1 } else { mu.saturating_sub(1) };
        for (i, (&b, &a)) in before.iter().zip(self.kappa.iter()).enumerate() {
            if b == a {
                continue;
            }
            // analyze: invariant(kappa_matches_recompute)
            debug_assert_eq!(
                b, mu,
                "Rule 0 violation: edge {i} changed level but sat at {b}, not \u{3bc} = {mu}"
            );
            // analyze: invariant(kappa_matches_recompute)
            debug_assert_eq!(
                a, expected,
                "Rule 0 violation: edge {i} moved {b} -> {a}, expected {expected}"
            );
        }
    }

    /// Propagates eliminations during a promote closure. Each edge popped
    /// from `elim_stack` is DEAD with a death sequence number; for every
    /// invalidated triangle it deducts the support of alive members iff it
    /// is the *earliest-dying* disqualified member — so each triangle is
    /// deducted exactly once even when several members die in one step.
    #[allow(clippy::too_many_arguments)]
    fn cascade_eliminations(
        &mut self,
        elim_stack: &mut Vec<EdgeId>,
        scratch: &mut Scratch,
        stamp: u32,
        mu: u32,
        inactive: &FxHashSet<Triple>,
        tris: &mut Vec<(VertexId, EdgeId, EdgeId)>,
        death_counter: &mut u32,
    ) {
        const ALIVE: u8 = 1;
        const DEAD: u8 = 2;
        while let Some(f) = elim_stack.pop() {
            let my_seq = scratch.s_val[f.index()];
            let (fu, fv) = self.g.endpoints(f);
            tris.clear();
            self.g.for_each_triangle_on_edge(f, |w, e1, e2| {
                tris.push((w, e1, e2));
            });
            for &(w, e1, e2) in tris.iter() {
                if !inactive.is_empty() && inactive.contains(&triple(fu, fv, w)) {
                    continue;
                }
                for (n, other) in [(e1, e2), (e2, e1)] {
                    // n loses the triangle iff it is an alive candidate,
                    // the third edge was ever shape-qualified (else the
                    // triangle was never counted), and f is the first of
                    // the triangle's members to die (else the earlier death
                    // already deducted it).
                    let n_alive = scratch.state_stamp[n.index()] == stamp
                        && scratch.state_val[n.index()] == ALIVE;
                    if !n_alive {
                        continue;
                    }
                    let other_shape = if self.kappa[other.index()] > mu {
                        true
                    } else if self.kappa[other.index()] < mu {
                        false
                    } else {
                        // Optimistic support is frozen and memoized.
                        let sv = if scratch.supp_stamp[other.index()] == stamp {
                            scratch.supp_val[other.index()]
                        } else {
                            let v = self.count_active_capped(
                                other,
                                inactive,
                                |y| self.kappa[y.index()] >= mu,
                                mu + 1,
                            );
                            scratch.supp_stamp[other.index()] = stamp;
                            scratch.supp_val[other.index()] = v;
                            v
                        };
                        sv > mu
                    };
                    if !other_shape {
                        continue; // triangle was never counted by n
                    }
                    let other_dead = scratch.state_stamp[other.index()] == stamp
                        && scratch.state_val[other.index()] == DEAD;
                    if other_dead && scratch.s_val[other.index()] < my_seq {
                        continue; // the other member died first and deducted
                    }
                    debug_assert_eq!(scratch.s_stamp[n.index()], stamp);
                    scratch.s_val[n.index()] -= 1;
                    if scratch.s_val[n.index()] <= mu {
                        scratch.state_val[n.index()] = DEAD;
                        scratch.s_val[n.index()] = *death_counter;
                        *death_counter += 1;
                        elim_stack.push(n);
                    }
                }
            }
        }
    }

    /// Demote cascade at level μ = min κ of the deactivated triangle's
    /// edges: level-μ edges that lose their μ-th supporting triangle drop
    /// to μ − 1 and may take level-μ neighbors with them.
    fn deactivate_triangle(&mut self, tri_edges: [EdgeId; 3], inactive: &FxHashSet<Triple>) {
        let [ea, eb, ec] = tri_edges;
        let mu = self.kappa[ea.index()]
            .min(self.kappa[eb.index()])
            .min(self.kappa[ec.index()]);
        if mu == 0 {
            // κ cannot drop below zero and higher levels are unaffected
            // (Rule 0).
            return;
        }
        #[cfg(feature = "check-invariants")]
        let kappa_before = self.kappa.clone();

        // Support at level μ: active triangles whose other edges have κ ≥ μ.
        let mut s: FxHashMap<EdgeId, u32> = FxHashMap::default();
        let mut queue: Vec<EdgeId> = Vec::new();
        for &f in &tri_edges {
            if self.kappa[f.index()] == mu && !s.contains_key(&f) {
                let at_level = |x: EdgeId| self.kappa[x.index()] >= mu;
                let sf = self.count_active(f, inactive, at_level);
                s.insert(f, sf);
                if sf < mu {
                    queue.push(f);
                }
            }
        }
        self.stats.edges_examined += s.len() as u64;

        while let Some(f) = queue.pop() {
            if self.kappa[f.index()] != mu {
                continue; // already demoted via another path
            }
            self.kappa[f.index()] = mu - 1;
            self.stats.demotions += 1;
            // Neighbors at level μ lose every triangle shared with f whose
            // third edge is still ≥ μ.
            let (x_v, y_v) = self.g.endpoints(f);
            let mut losses: Vec<EdgeId> = Vec::new();
            self.g.for_each_triangle_on_edge(f, |w, e1, e2| {
                if inactive.contains(&triple(x_v, y_v, w)) {
                    return;
                }
                for (nbr, other) in [(e1, e2), (e2, e1)] {
                    if self.kappa[nbr.index()] == mu && self.kappa[other.index()] >= mu {
                        losses.push(nbr);
                    }
                }
            });
            for nbr in losses {
                self.stats.edges_examined += 1;
                let entry = match s.get_mut(&nbr) {
                    Some(v) => {
                        // Already tracked: the triangle was counted when the
                        // support was computed (f was at level μ then, or it
                        // was recomputed later); deduct the loss.
                        *v = v.saturating_sub(1);
                        *v
                    }
                    None => {
                        // First touch: compute fresh — it already sees
                        // κ(f) = μ − 1, so no deduction.
                        let at_level = |x: EdgeId| self.kappa[x.index()] >= mu;
                        let sv = self.count_active(nbr, inactive, at_level);
                        s.insert(nbr, sv);
                        sv
                    }
                };
                if entry < mu && self.kappa[nbr.index()] == mu {
                    queue.push(nbr);
                }
            }
        }
        #[cfg(feature = "check-invariants")]
        self.debug_check_rule0(&kappa_before, mu, false);
    }
}

/// One operation in a batch update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert edge `{u, v}`.
    Insert(VertexId, VertexId),
    /// Remove edge `{u, v}`.
    Remove(VertexId, VertexId),
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::generators;

    /// Oracle check: maintained κ equals a fresh Algorithm 1 run.
    fn assert_consistent(d: &DynamicTriangleKCore) {
        let fresh = triangle_kcore_decomposition(d.graph());
        for e in d.graph().edge_ids() {
            assert_eq!(
                d.kappa(e),
                fresh.kappa(e),
                "κ mismatch on edge {e:?} ({:?})",
                d.graph().endpoints(e)
            );
        }
    }

    #[test]
    fn paper_figure_3_example() {
        // Figure 3: solid edges AB, BC, AE, AF, EF, CD, CE, DE with
        // κ = {AB:0, BC:0, AE:1, AF:1, EF:1, CD:1, CE:1, DE:1}; adding AC
        // lifts AB, BC, AC to 1 and leaves the rest at 1.
        // Vertices: A=0, B=1, C=2, D=3, E=4, F=5.
        let g = Graph::from_edges(
            6,
            [
                (0, 1), // AB
                (1, 2), // BC
                (0, 4), // AE
                (0, 5), // AF
                (4, 5), // EF
                (2, 3), // CD
                (2, 4), // CE
                (3, 4), // DE
            ],
        );
        let mut d = DynamicTriangleKCore::new(g);
        let k = |d: &DynamicTriangleKCore, u: u32, v: u32| {
            d.kappa(d.graph().edge_between(VertexId(u), VertexId(v)).unwrap())
        };
        assert_eq!(k(&d, 0, 1), 0);
        assert_eq!(k(&d, 1, 2), 0);
        assert_eq!(k(&d, 0, 4), 1);

        let ac = d.insert_edge(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(d.kappa(ac), 1, "AC");
        assert_eq!(k(&d, 0, 1), 1, "AB");
        assert_eq!(k(&d, 1, 2), 1, "BC");
        assert_eq!(k(&d, 0, 4), 1, "AE");
        assert_eq!(k(&d, 2, 4), 1, "CE");
        assert_consistent(&d);

        // And removing AC must restore the original values.
        d.remove_edge(ac).unwrap();
        assert_eq!(k(&d, 0, 1), 0);
        assert_eq!(k(&d, 1, 2), 0);
        assert_consistent(&d);
    }

    #[test]
    fn inserting_final_clique_edge_jumps_multiple_levels() {
        // K6 minus one edge, then insert it: the new edge must reach κ = 4
        // (4 activations, each promoting it one level).
        let mut g = generators::complete(6);
        g.remove_edge_between(VertexId(0), VertexId(1)).unwrap();
        let mut d = DynamicTriangleKCore::new(g);
        let e = d.insert_edge(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(d.kappa(e), 4);
        assert!(d.graph().edge_ids().all(|x| d.kappa(x) == 4));
        assert_consistent(&d);
    }

    #[test]
    fn removing_clique_edge_demotes_whole_clique() {
        let g = generators::complete(6);
        let mut d = DynamicTriangleKCore::new(g);
        d.remove_edge_between(VertexId(0), VertexId(1)).unwrap();
        assert_consistent(&d);
        // K6 minus an edge: edges not touching 0 or 1 still have κ = 3
        // (K4 on {2,3,4,5} extended); all edges drop from 4 to 3.
        for e in d.graph().edge_ids() {
            assert_eq!(d.kappa(e), 3);
        }
    }

    #[test]
    fn stats_track_work() {
        let mut d = DynamicTriangleKCore::new(generators::complete(5));
        assert_eq!(d.stats(), UpdateStats::default());
        d.remove_edge_between(VertexId(0), VertexId(1)).unwrap();
        let s = d.stats();
        assert_eq!(s.triangles_removed, 3);
        assert!(s.demotions > 0);
        d.reset_stats();
        assert_eq!(d.stats(), UpdateStats::default());
    }

    #[test]
    fn absorb_is_fieldwise_addition_with_default_identity() {
        let a = UpdateStats {
            triangles_added: 3,
            triangles_removed: 1,
            promotions: 7,
            demotions: 2,
            edges_examined: 40,
        };
        let b = UpdateStats {
            triangles_added: 10,
            triangles_removed: 20,
            promotions: 30,
            demotions: 40,
            edges_examined: 50,
        };
        let mut sum = a;
        sum.absorb(b);
        assert_eq!(
            sum,
            UpdateStats {
                triangles_added: 13,
                triangles_removed: 21,
                promotions: 37,
                demotions: 42,
                edges_examined: 90,
            }
        );
        // Absorbing the default is the identity; absorbing into the
        // default is a copy — the two laws the engine's cumulative
        // counters rely on when draining per-batch stats.
        let mut id = sum;
        id.absorb(UpdateStats::default());
        assert_eq!(id, sum);
        let mut fresh = UpdateStats::default();
        fresh.absorb(b);
        assert_eq!(fresh, b);
    }

    #[test]
    fn reset_drains_counters_for_cumulative_absorb() {
        // The drain pattern: absorb(stats()) + reset_stats() after each
        // batch must accumulate exactly the same totals as never resetting.
        let mut d = DynamicTriangleKCore::new(generators::complete(5));
        let mut undrained = DynamicTriangleKCore::new(generators::complete(5));
        let mut cumulative = UpdateStats::default();
        let script = [
            BatchOp::Remove(VertexId(0), VertexId(1)),
            BatchOp::Insert(VertexId(0), VertexId(1)),
            BatchOp::Remove(VertexId(2), VertexId(3)),
        ];
        for op in script {
            d.apply_batch([op]);
            cumulative.absorb(d.stats());
            d.reset_stats();
            assert_eq!(d.stats(), UpdateStats::default());
            undrained.apply_batch([op]);
        }
        assert_eq!(cumulative, undrained.stats());
    }

    #[test]
    fn batch_skips_duplicates_and_missing() {
        let mut d = DynamicTriangleKCore::new(generators::path(4));
        let (ins, del) = d.apply_batch([
            BatchOp::Insert(VertexId(0), VertexId(2)),
            BatchOp::Insert(VertexId(0), VertexId(2)), // dup
            BatchOp::Insert(VertexId(1), VertexId(1)), // self loop
            BatchOp::Remove(VertexId(0), VertexId(3)), // missing
            BatchOp::Remove(VertexId(0), VertexId(1)),
        ]);
        assert_eq!((ins, del), (1, 1));
        assert_consistent(&d);
    }

    #[test]
    fn growing_vertex_set() {
        let mut d = DynamicTriangleKCore::new(generators::complete(3));
        d.add_vertices(1);
        d.insert_edge(VertexId(0), VertexId(3)).unwrap();
        d.insert_edge(VertexId(1), VertexId(3)).unwrap();
        d.insert_edge(VertexId(2), VertexId(3)).unwrap();
        assert_consistent(&d);
        assert!(d.graph().edge_ids().all(|e| d.kappa(e) == 2));
    }

    #[test]
    fn deterministic_scripted_churn_stays_consistent() {
        // A scripted mix of insertions and deletions over a seeded graph,
        // checking the oracle after every operation.
        let g = generators::gnp(18, 0.18, 42);
        let mut d = DynamicTriangleKCore::new(g);
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 33) as u32
        };
        for step in 0..200 {
            let u = VertexId(next() % 18);
            let v = VertexId(next() % 18);
            if u == v {
                continue;
            }
            if d.graph().has_edge(u, v) {
                d.remove_edge_between(u, v).unwrap();
            } else {
                d.insert_edge(u, v).unwrap();
            }
            assert_consistent(&d);
            let _ = step;
        }
    }

    #[test]
    fn from_parts_roundtrip() {
        let g = generators::planted_partition(2, 6, 0.9, 0.1, 3);
        let kappa = triangle_kcore_decomposition(&g).into_kappa();
        let mut d = DynamicTriangleKCore::from_parts(g, kappa);
        d.insert_edge(VertexId(0), VertexId(11)).ok();
        assert_consistent(&d);
        let (g, kappa) = d.into_parts();
        assert_eq!(kappa.len(), g.edge_bound().max(kappa.len()));
    }

    #[test]
    fn vertex_departure_maintains_kappa() {
        // A K6 member leaves: the rest drop from κ=4 to κ=3.
        let mut d = DynamicTriangleKCore::new(generators::complete(6));
        let removed = d.isolate_vertex(VertexId(0));
        assert_eq!(removed, 5);
        assert_consistent(&d);
        for e in d.graph().edge_ids() {
            assert_eq!(d.kappa(e), 3);
        }
    }

    #[test]
    fn insert_into_triangle_free_region_is_cheap() {
        let mut d = DynamicTriangleKCore::new(generators::path(10));
        let e = d.insert_edge(VertexId(0), VertexId(9)).unwrap();
        assert_eq!(d.kappa(e), 0);
        assert_eq!(d.stats().triangles_added, 0);
        assert_consistent(&d);
    }
}
