//! Level-synchronous parallel peel: Algorithm 1 by **frontier rounds**
//! instead of one-edge-at-a-time bucket pops.
//!
//! The seed peel ([`crate::decompose::triangle_kcore_decomposition`]) is
//! inherently sequential — every pop depends on every earlier decrement
//! through the bucket queue. This module replaces that dependency chain
//! with the PKT-style schedule used by parallel truss decomposition:
//!
//! 1. **Harvest** the whole frontier: every unpeeled edge whose support
//!    equals the current minimum (`level`).
//! 2. **Round**: visit the triangles of every frontier edge in parallel
//!    and decrement the supports of their unpeeled third edges with CAS
//!    loops that clamp at `level`. An edge whose support lands exactly
//!    on `level` joins the *next* frontier (the within-level cascade),
//!    so sub-rounds repeat until the level drains.
//! 3. Assign `κ = level` to the whole batch and advance.
//!
//! Every edge peeled this way gets the same κ as the sequential peel:
//! batching the minimum-support edges is a valid linearization of
//! Algorithm 1 because supports of co-frontier edges are never touched
//! during a round (they already sit at `level`, and decrements clamp
//! there), so any order within the batch yields κ = `level` for all of
//! them — exactly what the sequential peel assigns.
//!
//! ## Triangle lookup
//!
//! What makes the rounds *fast* is not the threading but the lookup
//! structure behind [`TriangleSource`]:
//!
//! * [`TriangleStore`] — the paper's §IV-A stored-triangle tradeoff,
//!   adapted to the peel: per-edge flat lists of `(other, other)` edge
//!   pairs, materialized in one oriented enumeration pass. List lengths
//!   are exactly the initial supports, so the offsets are a prefix sum
//!   of the support vector the caller already computed. A round then
//!   walks flat pairs — total peel work is exactly `3·|Tri|` visits,
//!   with no adjacency re-intersection at all.
//! * [`tkc_graph::peel_csr::PeelCsr`] — the merge fallback when storing
//!   triangles would blow memory (`Σ sup > 8·m`, e.g. near-cliques):
//!   full-adjacency 4-byte rank merges with lazy compaction.
//!
//! Both sources honor one shortcut worth more than either structure: if
//! a harvest leaves **no unpeeled edge outside the frontier**, no
//! decrement can land anywhere, so the round skips triangle visits
//! entirely. A clique — the paper's motivating extreme, every edge at
//! one level — peels in a single scan.
//!
//! ## Determinism
//!
//! Bit-identical results for every chunk count, thread count, and
//! lookup structure come from four rules:
//!
//! * the `mark` array (unpeeled / frontier / peeled) is written only by
//!   the coordinating thread *between* rounds — workers treat it as
//!   read-only, and the pool's channel handoff gives the happens-before;
//! * for each dying triangle, only its **minimum-id frontier edge**
//!   performs the decrements, so the surviving third edge is
//!   decremented exactly once per triangle regardless of chunking;
//! * exactly one CAS observes the transition onto `level` (transition
//!   values are unique), so each cascading edge enters exactly one
//!   worker's local next-frontier buffer;
//! * local buffers are concatenated in chunk-submission order and then
//!   sorted, erasing chunk boundaries, CAS timing, and triangle-visit
//!   order from the result.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tkc_graph::csr::CsrGraph;
use tkc_graph::peel_csr::PeelCsr;
use tkc_graph::pool::resolve_threads;
use tkc_graph::{EdgeId, Graph, WorkerPool};

use crate::decompose::{Decomposition, PhaseTimings};

/// Mark value: edge not yet peeled (workers may decrement its support).
const UNPEELED: u8 = 0;
/// Mark value: edge is in the frontier of the round currently running
/// (its κ is decided; its support must not move).
const FRONTIER: u8 = 1;
/// Mark value: edge peeled in an earlier round (its triangles are gone).
const PEELED: u8 = 2;

/// Minimum estimated frontier work before a round fans out to the worker
/// pool; smaller rounds — cascade tails, sparse levels — run inline on
/// the coordinating thread, skipping the channel round-trip that would
/// dominate them.
pub const PARALLEL_PEEL_ROUND_FLOOR: u64 = 1 << 13;

/// Memory gate for the stored-triangle lookup: store when the flat pair
/// lists hold at most this many entries per live edge (`Σ sup ≤ 8·m`,
/// i.e. ≤ 64 bytes of pairs per edge). Sparse real-world graphs sit far
/// below it; near-cliques (|Tri| ~ m^1.5) fall back to adjacency merges.
pub const TRIANGLE_STORE_MAX_ENTRIES_PER_EDGE: u64 = 8;

/// Which triangle lookup structure the peel uses for its rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriangleLookup {
    /// Decide by the memory gate ([`TRIANGLE_STORE_MAX_ENTRIES_PER_EDGE`]).
    Auto,
    /// Force the stored-triangle flat lists (§IV-A tradeoff).
    Stored,
    /// Force the full-adjacency merge fallback ([`PeelCsr`]).
    Merge,
}

/// The routing rule [`Decomposition::compute_with`] uses: go level-sync
/// when the caller asked for parallelism and the graph's wedge work
/// clears the same spawn floor as the support kernels.
pub(crate) fn should_peel_parallel(g: &Graph, threads: usize) -> bool {
    tkc_graph::parallel::should_parallelize(g, threads)
}

/// Production entry behind [`Decomposition::compute_with`]: freeze once,
/// then run the fused level-sync pipeline (see [`level_sync_from_csr`]).
pub(crate) fn decompose_level_sync(g: &Graph, threads: usize) -> Decomposition {
    let csr = Arc::new(CsrGraph::freeze(g));
    level_sync_from_csr(&csr, threads).0
}

/// The fused production pipeline: **one** oriented enumeration pass
/// either collects every triangle (stored path — supports then fall out
/// of the collected list for free, instead of a second enumeration) or
/// bails at the memory cap, in which case supports are counted the
/// classic way and the rounds run over adjacency merges. Returns the
/// decomposition plus the (supports, peel) wall-clock split: `supports`
/// is the enumeration that determines every edge's support; `peel` is
/// everything after (store scatter / [`PeelCsr`] build, plus the rounds).
fn level_sync_from_csr(
    csr: &Arc<CsrGraph>,
    threads: usize,
) -> (Decomposition, std::time::Duration, std::time::Duration) {
    let chunks = WorkerPool::global().concurrency_cap(threads);
    let cap = (TRIANGLE_STORE_MAX_ENTRIES_PER_EDGE * csr.num_edges() as u64 / 3) as usize;
    let t_sup = Instant::now();
    if let Some(tris) = collect_triangles(csr, cap) {
        let supports_elapsed = t_sup.elapsed();
        let t_peel = Instant::now();
        let (src, sup) = TriangleStore::from_triples(csr.edge_bound(), &tris);
        drop(tris);
        let remaining = live_edges(csr);
        let d = peel_rounds(src, remaining, sup, chunks, PARALLEL_PEEL_ROUND_FLOOR);
        (d, supports_elapsed, t_peel.elapsed())
    } else {
        let sup = csr.edge_supports_parallel(threads);
        let supports_elapsed = t_sup.elapsed();
        let t_peel = Instant::now();
        let src = PeelCsr::build(csr);
        let remaining = src.live_edges().to_vec();
        let d = peel_rounds(src, remaining, sup, chunks, PARALLEL_PEEL_ROUND_FLOOR);
        (d, supports_elapsed, t_peel.elapsed())
    }
}

/// Forced level-synchronous decomposition for differential testing: the
/// chunk count is taken from `threads` verbatim (not capped at the pool
/// size) and every round with more than one chunk fans out, so the
/// multi-chunk merge path is exercised even on machines with fewer cores
/// than the request. κ, order, and max κ must be — and are checked by
/// `tkc-verify` to be — bit-identical to the sequential peel at every
/// thread count.
pub fn triangle_kcore_decomposition_parallel(g: &Graph, threads: usize) -> Decomposition {
    let csr = Arc::new(CsrGraph::freeze(g));
    let sup = csr.edge_supports();
    peel_csr_parallel_with(&csr, sup, resolve_threads(threads), 0, TriangleLookup::Auto)
}

/// [`triangle_kcore_decomposition_parallel`] with an explicit lookup
/// structure, so differential suites gate *both* the stored-triangle
/// path and the merge fallback on graphs where Auto would only ever pick
/// one of them.
pub fn triangle_kcore_decomposition_parallel_lookup(
    g: &Graph,
    threads: usize,
    lookup: TriangleLookup,
) -> Decomposition {
    let csr = Arc::new(CsrGraph::freeze(g));
    let sup = csr.edge_supports();
    peel_csr_parallel_with(&csr, sup, resolve_threads(threads), 0, lookup)
}

/// [`triangle_kcore_decomposition_parallel`] with the production chunk
/// cap and round floor, plus per-phase wall clock (freeze / supports /
/// peel, where `peel` includes building the triangle lookup structure).
/// Backs the `decompose_csr_parallel` rows of `bench_snapshot`.
pub fn triangle_kcore_decomposition_parallel_timed(
    g: &Graph,
    threads: usize,
) -> (Decomposition, PhaseTimings) {
    let mut timings = PhaseTimings::default();
    let t0 = Instant::now();
    let csr = Arc::new(CsrGraph::freeze(g));
    timings.freeze = t0.elapsed();
    let (decomp, supports, peel) = level_sync_from_csr(&csr, threads);
    timings.supports = supports;
    timings.peel = peel;
    (decomp, timings)
}

/// The level-synchronous peel, given a frozen snapshot and its initial
/// supports. `chunks` is the fan-out per round (1 = fully inline);
/// `round_floor` is the work threshold below which a round runs inline
/// regardless (pass 0 to force the pooled path for testing). Output is
/// bit-identical for every `(chunks, round_floor)` combination.
pub fn peel_csr_parallel(
    csr: &CsrGraph,
    sup: Vec<u32>,
    chunks: usize,
    round_floor: u64,
) -> Decomposition {
    peel_csr_parallel_with(csr, sup, chunks, round_floor, TriangleLookup::Auto)
}

/// [`peel_csr_parallel`] with an explicit [`TriangleLookup`] choice.
pub fn peel_csr_parallel_with(
    csr: &CsrGraph,
    sup: Vec<u32>,
    chunks: usize,
    round_floor: u64,
    lookup: TriangleLookup,
) -> Decomposition {
    let m = csr.num_edges();
    if m == 0 {
        return Decomposition::from_parts(vec![0u32; csr.edge_bound()], Vec::new(), 0);
    }
    let store = match lookup {
        TriangleLookup::Stored => true,
        TriangleLookup::Merge => false,
        TriangleLookup::Auto => {
            let entries: u64 = sup.iter().map(|&s| u64::from(s)).sum();
            entries <= TRIANGLE_STORE_MAX_ENTRIES_PER_EDGE * m as u64
        }
    };
    if store {
        let tris = collect_triangles(csr, usize::MAX).unwrap_or_default();
        // The derived supports are bit-identical to the caller's (both
        // count the same oriented enumeration); the store's offsets must
        // come from the true counts, so use the derived vector throughout.
        let (src, sup) = TriangleStore::from_triples(sup.len(), &tris);
        let remaining = live_edges(csr);
        peel_rounds(src, remaining, sup, chunks, round_floor)
    } else {
        let src = PeelCsr::build(csr);
        let remaining = src.live_edges().to_vec();
        peel_rounds(src, remaining, sup, chunks, round_floor)
    }
}

/// Collects every triangle of the snapshot as an edge-id triple, or
/// `None` once more than `cap` accumulate. The bail-out is checked per
/// lowest-ranked corner, so the overshoot is bounded by one rank's
/// triangles and a near-clique aborts long before materializing its
/// cubic triangle count.
fn collect_triangles(csr: &CsrGraph, cap: usize) -> Option<Vec<(EdgeId, EdgeId, EdgeId)>> {
    let mut tris = Vec::new();
    for r in 0..csr.num_vertices() {
        csr.for_each_triangle_range(r, r + 1, |a, b, c| tris.push((a, b, c)));
        if tris.len() > cap {
            return None;
        }
    }
    Some(tris)
}

/// Live edge ids of the snapshot, ascending (the canonical initial scan
/// order the peel's determinism leans on).
fn live_edges(csr: &CsrGraph) -> Vec<EdgeId> {
    let mut alive = vec![false; csr.edge_bound()];
    for r in 0..csr.num_vertices() {
        for (_, e) in csr.out_edges(r) {
            alive[e.index()] = true;
        }
    }
    (0..alive.len())
        .filter(|&i| alive[i])
        .map(EdgeId::from)
        .collect()
}

/// A structure the frontier rounds can ask for the triangles of an edge.
/// Implementations must answer consistently while shared read-only
/// during a round; the `&mut` hooks run between rounds, when the
/// coordinator holds the only reference.
trait TriangleSource: Send + Sync + 'static {
    /// Estimated cost of visiting `e`'s triangles (chunk balancing).
    fn edge_work(&self, e: EdgeId) -> u64;
    /// Calls `f(x, y)` for (at least) every triangle `{e, x, y}` whose
    /// three edges are all unpeeled; stale entries for already-peeled
    /// triangles are allowed — the rounds filter on `mark`.
    fn for_each_triangle_on_edge<F: FnMut(EdgeId, EdgeId)>(&self, e: EdgeId, f: F);
    /// Bookkeeping after a round peeled `frontier`.
    fn note_peeled(&mut self, frontier: &[EdgeId]);
    /// Bookkeeping after a level fully drained.
    fn end_level(&mut self, mark: &[AtomicU8]);
}

impl TriangleSource for PeelCsr {
    #[inline]
    fn edge_work(&self, e: EdgeId) -> u64 {
        PeelCsr::edge_work(self, e)
    }

    #[inline]
    fn for_each_triangle_on_edge<F: FnMut(EdgeId, EdgeId)>(&self, e: EdgeId, f: F) {
        PeelCsr::for_each_triangle_on_edge(self, e, f);
    }

    fn note_peeled(&mut self, frontier: &[EdgeId]) {
        for &e in frontier {
            self.retire(e);
        }
    }

    fn end_level(&mut self, mark: &[AtomicU8]) {
        self.compact(|e| mark[e.index()].load(Ordering::Relaxed) == PEELED);
    }
}

/// Stored-triangle lookup: per-edge flat lists of the other two edges of
/// each triangle. `offset` is a prefix sum of the initial supports (a
/// triangle list is exactly as long as the edge's support), `pairs` is
/// filled by one oriented enumeration pass over the snapshot.
struct TriangleStore {
    offset: Vec<u32>,
    pairs: Vec<(EdgeId, EdgeId)>,
}

impl TriangleStore {
    /// Builds the store *and* the support vector from one collected
    /// triangle list: a triangle list is exactly as long as the edge's
    /// support, so the supports double as the offset histogram.
    fn from_triples(bound: usize, tris: &[(EdgeId, EdgeId, EdgeId)]) -> (TriangleStore, Vec<u32>) {
        let mut sup = vec![0u32; bound];
        for &(a, b, c) in tris {
            sup[a.index()] += 1;
            sup[b.index()] += 1;
            sup[c.index()] += 1;
        }
        let mut offset = vec![0u32; bound + 1];
        for i in 0..bound {
            offset[i + 1] = offset[i] + sup[i];
        }
        let total = offset[bound] as usize;
        let mut pairs = vec![(EdgeId(0), EdgeId(0)); total];
        let mut cursor: Vec<u32> = offset[..bound].to_vec();
        for &(a, b, c) in tris {
            for (e, x, y) in [(a, b, c), (b, a, c), (c, a, b)] {
                let slot = cursor[e.index()];
                pairs[slot as usize] = (x, y);
                cursor[e.index()] = slot + 1;
            }
        }
        (TriangleStore { offset, pairs }, sup)
    }
}

impl TriangleSource for TriangleStore {
    #[inline]
    fn edge_work(&self, e: EdgeId) -> u64 {
        let i = e.index();
        1 + u64::from(self.offset[i + 1] - self.offset[i])
    }

    #[inline]
    fn for_each_triangle_on_edge<F: FnMut(EdgeId, EdgeId)>(&self, e: EdgeId, mut f: F) {
        let i = e.index();
        let (s, t) = (self.offset[i] as usize, self.offset[i + 1] as usize);
        for &(x, y) in &self.pairs[s..t] {
            f(x, y);
        }
    }

    fn note_peeled(&mut self, _frontier: &[EdgeId]) {}

    fn end_level(&mut self, _mark: &[AtomicU8]) {}
}

/// The level-synchronous driver, generic over the triangle lookup.
fn peel_rounds<S: TriangleSource>(
    src: S,
    mut remaining: Vec<EdgeId>,
    sup: Vec<u32>,
    chunks: usize,
    round_floor: u64,
) -> Decomposition {
    let bound = sup.len();
    let m = remaining.len();
    let mut kappa = vec![0u32; bound];
    if m == 0 {
        return Decomposition::from_parts(kappa, Vec::new(), 0);
    }
    let sup: Arc<Vec<AtomicU32>> = Arc::new(sup.into_iter().map(AtomicU32::new).collect());
    let mark: Arc<Vec<AtomicU8>> = Arc::new((0..bound).map(|_| AtomicU8::new(UNPEELED)).collect());
    let mut src = Arc::new(src);
    let mut order: Vec<EdgeId> = Vec::with_capacity(m);
    let mut max_kappa = 0u32;

    while order.len() < m {
        let (mut frontier, level) = harvest(&mut remaining, &sup, &mark);
        // analyze: invariant(check_parallel_peel)
        debug_assert!(
            !frontier.is_empty() && level != u32::MAX,
            "harvest found no frontier with {} edges unpeeled",
            m - order.len()
        );
        // analyze: invariant(check_parallel_peel)
        debug_assert!(
            order.is_empty() || level > max_kappa,
            "level monotonicity violation: harvested level {level} after \
             finishing level {max_kappa}"
        );
        max_kappa = level;
        while !frontier.is_empty() {
            for &e in &frontier {
                mark[e.index()].store(FRONTIER, Ordering::Relaxed);
            }
            // If nothing unpeeled remains outside the frontier, no
            // decrement can land anywhere — skip the triangle visits. A
            // clique (every edge at one level) peels in a single scan.
            let next = if remaining.is_empty() {
                Vec::new()
            } else {
                run_frontier_round(&src, &sup, &mark, &frontier, level, chunks, round_floor)
            };
            for &e in &frontier {
                kappa[e.index()] = level;
                mark[e.index()].store(PEELED, Ordering::Relaxed);
            }
            // Between rounds the coordinator holds the only strong
            // reference again (worker closures were dropped when the
            // round returned), so the source is mutable for bookkeeping.
            if let Some(source) = Arc::get_mut(&mut src) {
                source.note_peeled(&frontier);
            }
            order.append(&mut frontier);
            frontier = next;
        }
        if let Some(source) = Arc::get_mut(&mut src) {
            source.end_level(&mark);
        }
    }
    Decomposition::from_parts(kappa, order, max_kappa)
}

/// One pass over the unpeeled edges: drop peeled entries, find the new
/// minimum support, and split its edges off as the frontier. The minimum
/// must be recomputed by scanning — a minimum captured before the level's
/// rounds ran would be stale, because cascades decrement supports *down
/// to* (never below) the level that just finished. Both the frontier and
/// the kept remainder preserve ascending edge-id order.
fn harvest(
    remaining: &mut Vec<EdgeId>,
    sup: &[AtomicU32],
    mark: &[AtomicU8],
) -> (Vec<EdgeId>, u32) {
    let mut level = u32::MAX;
    let mut write = 0usize;
    for read in 0..remaining.len() {
        let e = remaining[read];
        if mark[e.index()].load(Ordering::Relaxed) == PEELED {
            continue;
        }
        remaining[write] = e;
        write += 1;
        level = level.min(sup[e.index()].load(Ordering::Relaxed));
    }
    remaining.truncate(write);
    let mut frontier = Vec::new();
    let mut keep = 0usize;
    for read in 0..remaining.len() {
        let e = remaining[read];
        if sup[e.index()].load(Ordering::Relaxed) == level {
            frontier.push(e);
        } else {
            remaining[keep] = e;
            keep += 1;
        }
    }
    remaining.truncate(keep);
    (frontier, level)
}

/// Runs one frontier round and returns the next frontier (edges whose
/// support cascaded down onto `level`), sorted ascending.
fn run_frontier_round<S: TriangleSource>(
    src: &Arc<S>,
    sup: &Arc<Vec<AtomicU32>>,
    mark: &Arc<Vec<AtomicU8>>,
    frontier: &[EdgeId],
    level: u32,
    chunks: usize,
    round_floor: u64,
) -> Vec<EdgeId> {
    // κ = 0 batch: supports never undercount remaining triangles (each
    // triangle death decrements by at most one), so support 0 means zero
    // unpeeled triangles — skip the visits entirely. On sparse graphs
    // this removes the bulk of all peel work.
    if level == 0 {
        return Vec::new();
    }
    let mut next = if chunks <= 1 || frontier.len() < chunks {
        process_slice(src.as_ref(), sup, mark, frontier, level)
    } else {
        // Work-prefix sums over the frontier, so chunks are balanced by
        // estimated visit cost rather than edge count.
        let mut total = 0u64;
        let prefix: Vec<u64> = frontier
            .iter()
            .map(|&e| {
                total += src.edge_work(e);
                total
            })
            .collect();
        if total < round_floor {
            process_slice(src.as_ref(), sup, mark, frontier, level)
        } else {
            let shared: Arc<[EdgeId]> = Arc::from(frontier);
            let mut bounds = Vec::with_capacity(chunks + 1);
            bounds.push(0usize);
            for j in 1..chunks {
                let target = total / chunks as u64 * j as u64;
                let split = prefix.partition_point(|&w| w < target);
                bounds.push(split.max(*bounds.last().unwrap_or(&0)));
            }
            bounds.push(frontier.len());
            let jobs: Vec<_> = bounds
                .windows(2)
                .map(|w| (w[0], w[1]))
                .map(|(lo, hi)| {
                    let src = Arc::clone(src);
                    let sup = Arc::clone(sup);
                    let mark = Arc::clone(mark);
                    let shared = Arc::clone(&shared);
                    move || process_slice(src.as_ref(), &sup, &mark, &shared[lo..hi], level)
                })
                .collect();
            // Results merge in chunk-submission order: which worker ran
            // which chunk (or whether the round ran inline at all) is
            // unobservable after the sort below.
            WorkerPool::global()
                .run_round(jobs, total, round_floor)
                .concat()
        }
    };
    next.sort_unstable();
    next
}

/// Processes one slice of the frontier: for every still-alive triangle on
/// each edge, decrement the unpeeled third edge's support (CAS, clamped
/// at `level`) under the minimum-id ownership rule. Returns this worker's
/// share of the next frontier (edges observed transitioning onto
/// `level`), in discovery order.
fn process_slice<S: TriangleSource>(
    src: &S,
    sup: &[AtomicU32],
    mark: &[AtomicU8],
    frontier: &[EdgeId],
    level: u32,
) -> Vec<EdgeId> {
    let mut next = Vec::new();
    for &e in frontier {
        src.for_each_triangle_on_edge(e, |x, y| {
            let mx = mark[x.index()].load(Ordering::Relaxed);
            let my = mark[y.index()].load(Ordering::Relaxed);
            if mx == PEELED || my == PEELED {
                return; // triangle already died in an earlier round
            }
            // Ownership: the minimum-id frontier edge of the triangle
            // performs the decrements; co-frontier edges with larger ids
            // stand down, so the third edge loses exactly one support per
            // dying triangle no matter how the frontier was chunked.
            if (mx == FRONTIER && x < e) || (my == FRONTIER && y < e) {
                return;
            }
            for (z, mz) in [(x, mx), (y, my)] {
                if mz != UNPEELED {
                    continue; // co-frontier edge: κ = level already decided
                }
                let zi = z.index();
                let mut cur = sup[zi].load(Ordering::Relaxed);
                while cur > level {
                    match sup[zi].compare_exchange_weak(
                        cur,
                        cur - 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            if cur - 1 == level {
                                // This CAS is the unique observer of the
                                // transition onto `level`: z joins the
                                // next frontier exactly once.
                                next.push(z);
                            }
                            break;
                        }
                        Err(seen) => cur = seen,
                    }
                }
            }
        });
    }
    next
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::decompose::triangle_kcore_decomposition;
    use tkc_graph::{generators, VertexId};

    fn assert_matches_sequential(g: &Graph, label: &str) {
        let seq = triangle_kcore_decomposition(g);
        for threads in [1usize, 2, 4, 8] {
            for lookup in [
                TriangleLookup::Auto,
                TriangleLookup::Stored,
                TriangleLookup::Merge,
            ] {
                let par = triangle_kcore_decomposition_parallel_lookup(g, threads, lookup);
                assert_eq!(
                    par.kappa_slice(),
                    seq.kappa_slice(),
                    "{label}: κ mismatch at {threads} chunks via {lookup:?}"
                );
                assert_eq!(par.max_kappa(), seq.max_kappa(), "{label} ({lookup:?})");
                assert_eq!(par.order().len(), seq.order().len(), "{label} ({lookup:?})");
            }
        }
    }

    #[test]
    fn matches_sequential_on_structured_graphs() {
        assert_matches_sequential(&generators::complete(9), "K9");
        assert_matches_sequential(&generators::holme_kim(300, 3, 0.6, 5), "holme_kim");
        assert_matches_sequential(
            &generators::planted_partition(3, 10, 0.7, 0.05, 2),
            "planted",
        );
        assert_matches_sequential(&generators::gnp(80, 0.12, 9), "gnp");
        assert_matches_sequential(&generators::star(12), "star");
        assert_matches_sequential(&generators::path(6), "path");
        assert_matches_sequential(&Graph::new(), "empty");
    }

    #[test]
    fn matches_sequential_with_dead_slots() {
        let mut g = generators::planted_partition(2, 10, 0.8, 0.1, 7);
        let victims: Vec<_> = g.edge_ids().step_by(5).collect();
        for e in victims {
            g.remove_edge(e).unwrap();
        }
        assert_matches_sequential(&g, "dead-slots");
    }

    #[test]
    fn order_is_identical_across_chunk_counts_and_lookups() {
        let g = generators::holme_kim(250, 3, 0.5, 3);
        let base = triangle_kcore_decomposition_parallel(&g, 1);
        for threads in [2usize, 3, 8] {
            for lookup in [TriangleLookup::Stored, TriangleLookup::Merge] {
                let d = triangle_kcore_decomposition_parallel_lookup(&g, threads, lookup);
                assert_eq!(d.order(), base.order(), "{threads} chunks via {lookup:?}");
            }
        }
        // The order is a genuine peel order: non-decreasing κ over a
        // permutation of the live edges.
        let ks: Vec<u32> = base.order().iter().map(|&e| base.kappa(e)).collect();
        assert!(ks.windows(2).all(|w| w[0] <= w[1]));
        let mut ids: Vec<_> = base.order().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), g.num_edges());
    }

    #[test]
    fn auto_gate_picks_merge_on_dense_and_stored_on_sparse() {
        // K60: Σ sup = 3·C(60,3) ≫ 8·m — Auto must not materialize.
        let dense = generators::complete(60);
        let sup_sum: u64 = 3 * (60 * 59 * 58 / 6);
        assert!(sup_sum > TRIANGLE_STORE_MAX_ENTRIES_PER_EDGE * dense.num_edges() as u64);
        // A sparse clustered graph sits comfortably under the gate.
        let sparse = generators::holme_kim(400, 3, 0.6, 1);
        let sup = tkc_graph::triangles::edge_supports(&sparse);
        let entries: u64 = sup.iter().map(|&s| u64::from(s)).sum();
        assert!(entries <= TRIANGLE_STORE_MAX_ENTRIES_PER_EDGE * sparse.num_edges() as u64);
        // Either way the result matches the reference.
        assert_matches_sequential(&dense, "K60");
    }

    #[test]
    fn production_routing_uses_level_sync_and_matches() {
        // Big enough to clear the wedge-work spawn floor, so
        // compute_with(.., 4) actually takes the level-sync path.
        let g = generators::holme_kim(800, 4, 0.7, 11);
        assert!(should_peel_parallel(&g, 4));
        let seq = triangle_kcore_decomposition(&g);
        let via_compute = Decomposition::compute_with(&g, 4);
        assert_eq!(via_compute.kappa_slice(), seq.kappa_slice());
        let direct = decompose_level_sync(&g, 4);
        assert_eq!(direct.kappa_slice(), seq.kappa_slice());
    }

    #[test]
    fn timed_variant_matches_and_fills_phases() {
        let g = generators::holme_kim(400, 3, 0.6, 13);
        let seq = triangle_kcore_decomposition(&g);
        let (d, t) = triangle_kcore_decomposition_parallel_timed(&g, 4);
        assert_eq!(d.kappa_slice(), seq.kappa_slice());
        assert!(t.peel > std::time::Duration::ZERO);
        assert!(t.supports > std::time::Duration::ZERO);
        assert_eq!(t.total(), t.freeze + t.supports + t.peel);
    }

    #[test]
    fn forced_pooled_rounds_match_inline_rounds() {
        // round_floor 0 forces every multi-chunk round through the pool;
        // a huge floor forces every round inline. Identical output is the
        // determinism contract.
        let g = generators::planted_partition(4, 8, 0.8, 0.1, 4);
        let csr = Arc::new(CsrGraph::freeze(&g));
        let sup = csr.edge_supports();
        for lookup in [TriangleLookup::Stored, TriangleLookup::Merge] {
            let pooled = peel_csr_parallel_with(&csr, sup.clone(), 4, 0, lookup);
            let inline = peel_csr_parallel_with(&csr, sup.clone(), 4, u64::MAX, lookup);
            assert_eq!(pooled, inline, "{lookup:?}");
        }
    }

    #[test]
    fn two_cliques_sharing_an_edge() {
        // Classic cascade shape: peeling the small clique's level must
        // not disturb the large clique's κ.
        let mut g = generators::complete(7);
        let base = g.num_vertices() as u32;
        g.add_vertices(3);
        for &u in &[0u32, 1] {
            for v in 0..3u32 {
                g.add_edge(VertexId(u), VertexId(base + v)).unwrap();
            }
        }
        for i in 0..3u32 {
            for j in (i + 1)..3 {
                g.add_edge(VertexId(base + i), VertexId(base + j)).unwrap();
            }
        }
        assert_matches_sequential(&g, "shared-edge cliques");
    }
}
