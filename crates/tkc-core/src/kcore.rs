//! Vertex K-Core decomposition (Definitions 1–2) via the Batagelj–Zaveršnik
//! bucket algorithm \[21\], the O(|E|) method the paper cites and the
//! structure Triangle K-Core generalizes from vertices/edges to
//! edges/triangles (Figure 1).

use tkc_graph::{Graph, VertexId};

/// Core number of every vertex (0 for isolated vertices).
///
/// # Examples
///
/// ```
/// use tkc_graph::generators;
/// use tkc_core::kcore::core_numbers;
///
/// let g = generators::complete(4);
/// assert!(core_numbers(&g).iter().all(|&c| c == 3));
/// ```
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut deg: Vec<u32> = (0..n).map(|v| g.degree(VertexId::from(v)) as u32).collect();
    if n == 0 {
        return deg;
    }
    let max_deg = *deg.iter().max().expect("n > 0 checked above") as usize;

    // Counting sort of vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &deg {
        bin[d as usize] += 1;
    }
    let mut start = 0;
    for b in bin.iter_mut() {
        let c = *b;
        *b = start;
        start += c;
    }
    let mut sorted: Vec<u32> = vec![0; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            pos[v] = cursor[d];
            sorted[cursor[d]] = v as u32;
            cursor[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    let mut processed = vec![false; n];
    for i in 0..n {
        let v = sorted[i] as usize;
        core[v] = deg[v];
        processed[v] = true;
        bin[deg[v] as usize] = i + 1;
        for (w, _) in g.neighbors(VertexId::from(v)) {
            let w = w.index();
            if processed[w] || deg[w] <= deg[v] {
                continue;
            }
            let dw = deg[w] as usize;
            let pw = pos[w];
            let pfront = bin[dw];
            let front = sorted[pfront] as usize;
            if w != front {
                sorted[pw] = front as u32;
                sorted[pfront] = w as u32;
                pos[front] = pw;
                pos[w] = pfront;
            }
            bin[dw] += 1;
            deg[w] -= 1;
        }
    }
    core
}

/// Maximum core number in the graph (the graph's *degeneracy*).
pub fn degeneracy(g: &Graph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// Vertices of the maximal k-core subgraph: every vertex with core number
/// ≥ `k`.
pub fn kcore_vertices(g: &Graph, k: u32) -> Vec<VertexId> {
    core_numbers(g)
        .into_iter()
        .enumerate()
        .filter(|&(_v, c)| c >= k)
        .map(|(v, _c)| VertexId::from(v))
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::reference::naive_core_numbers;
    use tkc_graph::generators;

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::gnp(40, 0.15, seed);
            assert_eq!(core_numbers(&g), naive_core_numbers(&g), "seed {seed}");
        }
    }

    #[test]
    fn figure_1a_minimal_2_core() {
        // Figure 1(a): a 5-cycle is the minimal 5-vertex K-Core with core
        // number 2 — contrast with Figure 1(b)'s Triangle K-Core.
        let g = generators::cycle(5);
        assert!(core_numbers(&g).iter().all(|&c| c == 2));
        // And it has no triangles at all: κ would be 0 everywhere.
        assert_eq!(tkc_graph::triangles::triangle_count(&g), 0);
    }

    #[test]
    fn star_and_path() {
        assert!(core_numbers(&generators::star(6)).iter().all(|&c| c == 1));
        let path = generators::path(5);
        let core = core_numbers(&path);
        assert!(core.iter().all(|&c| c == 1));
    }

    #[test]
    fn empty_graph() {
        assert!(core_numbers(&Graph::new()).is_empty());
        assert_eq!(degeneracy(&Graph::new()), 0);
    }

    #[test]
    fn degeneracy_of_clique() {
        assert_eq!(degeneracy(&generators::complete(7)), 6);
    }

    #[test]
    fn kcore_vertices_filter() {
        // A K4 glued to a path: only the K4 is in the 3-core.
        let mut g = generators::complete(4);
        g.add_vertices(2);
        g.add_edge(VertexId(3), VertexId(4)).unwrap();
        g.add_edge(VertexId(4), VertexId(5)).unwrap();
        let vs = kcore_vertices(&g, 3);
        assert_eq!(vs, vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
    }
}
