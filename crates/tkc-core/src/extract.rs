//! Extraction of concrete Triangle K-Core subgraphs from a decomposition:
//! per-edge maximum cores (Definition 4), level sets, the full core
//! hierarchy, and surfacing of exact cliques (an `n`-clique is precisely an
//! `n`-vertex Triangle K-Core of number `n − 2`).

use tkc_graph::components::{edge_set_vertices, triangle_connected_components};
use tkc_graph::{EdgeId, Graph, VertexId};

use crate::decompose::Decomposition;

/// One extracted Triangle K-Core: a triangle-connected set of edges all of
/// whose κ is at least `level`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Core {
    /// The guaranteed Triangle K-Core number of this subgraph.
    pub level: u32,
    /// Member edges (sorted by id).
    pub edges: Vec<EdgeId>,
    /// Spanned vertices (sorted).
    pub vertices: Vec<VertexId>,
}

impl Core {
    /// True when this core is an exact clique: `|V|`-vertex Triangle
    /// K-Core of number `|V| − 2` with all `C(|V|, 2)` edges present.
    pub fn is_clique(&self) -> bool {
        let n = self.vertices.len();
        n >= 2 && self.edges.len() == n * (n - 1) / 2
    }

    /// The paper's density proxy for this core: `level + 2` vertices of
    /// clique-like interaction.
    pub fn co_clique_size(&self) -> u32 {
        self.level + 2
    }
}

/// All maximal Triangle K-Cores of number ≥ `k` (for `k ≥ 1`): the
/// triangle-connected components of edges with `κ ≥ k` (Claim 2).
pub fn cores_at_level(g: &Graph, decomp: &Decomposition, k: u32) -> Vec<Core> {
    assert!(k >= 1, "level-0 cores are the whole graph");
    let comps = triangle_connected_components(g, |e| decomp.kappa(e) >= k);
    comps
        .into_iter()
        .map(|edges| {
            let vertices = edge_set_vertices(g, &edges);
            Core {
                level: k,
                edges,
                vertices,
            }
        })
        .collect()
}

/// The maximum Triangle K-Core containing edge `e` (Definition 4): the
/// triangle-connected component of `e` among edges with `κ ≥ κ(e)`.
/// Returns `None` when `κ(e) == 0` (the edge is in no triangle core).
pub fn maximum_core_of_edge(g: &Graph, decomp: &Decomposition, e: EdgeId) -> Option<Core> {
    let k = decomp.kappa(e);
    if k == 0 {
        return None;
    }
    cores_at_level(g, decomp, k)
        .into_iter()
        .find(|c| c.edges.binary_search(&e).is_ok())
}

/// The nested hierarchy of cores for every level `1..=max_kappa`, densest
/// last. `hierarchy[k-1]` holds the cores of level `k`.
pub fn core_hierarchy(g: &Graph, decomp: &Decomposition) -> Vec<Vec<Core>> {
    (1..=decomp.max_kappa())
        .map(|k| cores_at_level(g, decomp, k))
        .collect()
}

/// Cores at the top level that are exact cliques — the "flat peaks" the
/// paper's plots highlight (§VII-B). Returns cliques of any level whose
/// vertex count equals `level + 2`, scanning from the densest level down
/// until at least `want` cliques are found (or levels are exhausted).
pub fn densest_cliques(g: &Graph, decomp: &Decomposition, want: usize) -> Vec<Core> {
    let mut found = Vec::new();
    for k in (1..=decomp.max_kappa()).rev() {
        for core in cores_at_level(g, decomp, k) {
            if core.is_clique() && core.vertices.len() as u32 == k + 2 {
                found.push(core);
            }
        }
        if found.len() >= want {
            break;
        }
    }
    found
}

/// Community search: the Triangle K-Core community of a *query vertex* at
/// level `k` — the union of level-`k` cores touching `v`. Returns one core
/// per triangle-connected component (a vertex can belong to several
/// communities at low `k`). Empty when no incident edge reaches κ ≥ k.
pub fn communities_of_vertex(g: &Graph, decomp: &Decomposition, v: VertexId, k: u32) -> Vec<Core> {
    cores_at_level(g, decomp, k)
        .into_iter()
        .filter(|c| c.vertices.binary_search(&v).is_ok())
        .collect()
}

/// Summary statistics of a decomposition, for reports and dashboards.
#[derive(Debug, Clone, PartialEq)]
pub struct KappaStats {
    /// Number of live edges.
    pub edges: usize,
    /// Largest κ.
    pub max_kappa: u32,
    /// Mean κ over live edges.
    pub mean_kappa: f64,
    /// Fraction of edges with κ = 0 (triangle-free edges).
    pub triangle_free_fraction: f64,
    /// Number of maximal cores at the top level.
    pub top_level_cores: usize,
}

/// Computes [`KappaStats`] for a decomposition.
pub fn kappa_stats(g: &Graph, decomp: &Decomposition) -> KappaStats {
    let hist = decomp.histogram();
    let edges: usize = hist.iter().sum();
    let sum: u64 = hist
        .iter()
        .enumerate()
        .map(|(k, &c)| k as u64 * c as u64)
        .sum();
    let top_level_cores = if decomp.max_kappa() >= 1 {
        cores_at_level(g, decomp, decomp.max_kappa()).len()
    } else {
        0
    };
    KappaStats {
        edges,
        max_kappa: decomp.max_kappa(),
        mean_kappa: if edges == 0 {
            0.0
        } else {
            sum as f64 / edges as f64
        },
        triangle_free_fraction: if edges == 0 {
            0.0
        } else {
            hist.first().copied().unwrap_or(0) as f64 / edges as f64
        },
        top_level_cores,
    }
}

/// For each vertex, the largest κ among incident edges (the per-vertex
/// density the plots draw; 0 for vertices with no triangles).
pub fn vertex_density(g: &Graph, decomp: &Decomposition) -> Vec<u32> {
    let mut best = vec![0u32; g.num_vertices()];
    for (e, u, v) in g.edges() {
        let k = decomp.kappa(e);
        best[u.index()] = best[u.index()].max(k);
        best[v.index()] = best[v.index()].max(k);
    }
    best
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::decompose::triangle_kcore_decomposition;
    use crate::reference::is_triangle_kcore;
    use tkc_graph::generators;

    fn two_cliques() -> Graph {
        // K5 on 0..5 and K4 on 5..9, joined by one edge.
        let mut g = generators::complete(5);
        g.add_vertices(4);
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                g.add_edge(VertexId(i), VertexId(j)).unwrap();
            }
        }
        g.add_edge(VertexId(4), VertexId(5)).unwrap();
        g
    }

    #[test]
    fn level_sets_separate_the_cliques() {
        let g = two_cliques();
        let d = triangle_kcore_decomposition(&g);
        let lvl2 = cores_at_level(&g, &d, 2);
        assert_eq!(lvl2.len(), 2);
        let lvl3 = cores_at_level(&g, &d, 3);
        assert_eq!(lvl3.len(), 1);
        assert_eq!(lvl3[0].vertices.len(), 5);
        assert!(lvl3[0].is_clique());
        assert_eq!(lvl3[0].co_clique_size(), 5);
        // Every extracted core satisfies Definition 3 at its level.
        for core in lvl2.iter().chain(&lvl3) {
            assert!(is_triangle_kcore(&g, &core.edges, core.level));
        }
    }

    #[test]
    fn maximum_core_of_edge_matches_definition() {
        let g = two_cliques();
        let d = triangle_kcore_decomposition(&g);
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        let core = maximum_core_of_edge(&g, &d, e).unwrap();
        assert_eq!(core.level, 3);
        assert_eq!(core.vertices.len(), 5);
        // The bridge edge is in no triangle: no core.
        let bridge = g.edge_between(VertexId(4), VertexId(5)).unwrap();
        assert_eq!(d.kappa(bridge), 0);
        assert!(maximum_core_of_edge(&g, &d, bridge).is_none());
    }

    #[test]
    fn theorem_1_holds_inside_maximum_cores() {
        // Theorem 1: for any triangle T inside e's maximum core,
        // κ(other edges of T) >= κ(e).
        let g = generators::planted_partition(3, 7, 0.75, 0.08, 11);
        let d = triangle_kcore_decomposition(&g);
        for e in g.edge_ids() {
            if let Some(core) = maximum_core_of_edge(&g, &d, e) {
                let set: std::collections::HashSet<_> = core.edges.iter().copied().collect();
                g.for_each_triangle_on_edge(e, |_, e1, e2| {
                    if set.contains(&e1) && set.contains(&e2) {
                        assert!(d.kappa(e1) >= d.kappa(e));
                        assert!(d.kappa(e2) >= d.kappa(e));
                    }
                });
            }
        }
    }

    #[test]
    fn hierarchy_is_nested() {
        let g = two_cliques();
        let d = triangle_kcore_decomposition(&g);
        let h = core_hierarchy(&g, &d);
        assert_eq!(h.len(), d.max_kappa() as usize);
        // Every edge at level k+1 appears at level k too.
        for k in 1..h.len() {
            let upper: std::collections::HashSet<_> =
                h[k].iter().flat_map(|c| c.edges.iter().copied()).collect();
            let lower: std::collections::HashSet<_> = h[k - 1]
                .iter()
                .flat_map(|c| c.edges.iter().copied())
                .collect();
            assert!(upper.is_subset(&lower));
        }
    }

    #[test]
    fn densest_cliques_finds_planted_structure() {
        let mut g = generators::gnp(40, 0.06, 13);
        let base = g.num_vertices();
        generators::plant_fresh_cliques(&mut g, 2, 6, 2, 5);
        let d = triangle_kcore_decomposition(&g);
        let cliques = densest_cliques(&g, &d, 2);
        assert!(!cliques.is_empty());
        let top = &cliques[0];
        assert!(top.vertices.len() >= 6);
        assert!(top.vertices.iter().any(|v| v.index() >= base));
    }

    #[test]
    fn vertex_density_tracks_best_incident_edge() {
        let g = two_cliques();
        let d = triangle_kcore_decomposition(&g);
        let dens = vertex_density(&g, &d);
        assert_eq!(dens[0], 3); // inside K5
        assert_eq!(dens[8], 2); // inside K4
        assert_eq!(dens[4], 3); // K5 member that also holds the bridge
    }

    #[test]
    #[should_panic(expected = "level-0")]
    fn level_zero_extraction_is_rejected() {
        let g = generators::complete(3);
        let d = triangle_kcore_decomposition(&g);
        let _ = cores_at_level(&g, &d, 0);
    }

    #[test]
    fn community_search_finds_the_query_vertex_groups() {
        let g = two_cliques();
        let d = triangle_kcore_decomposition(&g);
        // Vertex 0 lives in the K5 only.
        let comms = communities_of_vertex(&g, &d, VertexId(0), 2);
        assert_eq!(comms.len(), 1);
        assert_eq!(comms[0].vertices.len(), 5);
        // Vertex 4 (K5 member holding the bridge): still just the K5 at k=2.
        let comms = communities_of_vertex(&g, &d, VertexId(4), 2);
        assert_eq!(comms.len(), 1);
        // At an unreachable level: nothing.
        assert!(communities_of_vertex(&g, &d, VertexId(8), 3).is_empty());
    }

    #[test]
    fn stats_summarize_the_decomposition() {
        let g = two_cliques();
        let d = triangle_kcore_decomposition(&g);
        let stats = kappa_stats(&g, &d);
        assert_eq!(stats.edges, g.num_edges());
        assert_eq!(stats.max_kappa, 3);
        assert_eq!(stats.top_level_cores, 1);
        // One bridge edge has κ = 0.
        assert!(stats.triangle_free_fraction > 0.0);
        assert!(stats.mean_kappa > 2.0);

        let empty = Graph::new();
        let d = triangle_kcore_decomposition(&empty);
        let stats = kappa_stats(&empty, &d);
        assert_eq!(stats.edges, 0);
        assert_eq!(stats.mean_kappa, 0.0);
    }
}
