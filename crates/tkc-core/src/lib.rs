//! # tkc-core — Triangle K-Core decomposition and maintenance
//!
//! The primary contribution of *"Extracting Analyzing and Visualizing
//! Triangle K-Core Motifs within Networks"* (ICDE 2012):
//!
//! * [`decompose`] — Algorithm 1: κ(e) for every edge via bucket peeling,
//!   linear in the number of triangles;
//! * [`dynamic`] — Algorithms 2/5/6/7: incremental κ maintenance under
//!   edge insertions and deletions;
//! * [`extract`] — materializing maximum Triangle K-Cores, level sets,
//!   hierarchies, and exact cliques;
//! * [`peel_parallel`] — the level-synchronous parallel peel behind
//!   [`decompose::Decomposition::compute_with`];
//! * [`kcore`] — the classic vertex K-Core (\[21\]) the motif generalizes;
//! * [`ooc`] — the out-of-core stratum peel over a packed `tkc-store`
//!   file, for graphs larger than memory;
//! * [`persist`] — save/load κ vectors across processes;
//! * [`mod@reference`] — naive definitional oracles used by the test suite.
//!
//! ```
//! use tkc_graph::{generators, VertexId};
//! use tkc_core::prelude::*;
//!
//! // Static decomposition...
//! let g = generators::complete(6);
//! let d = triangle_kcore_decomposition(&g);
//! assert_eq!(d.max_kappa(), 4);
//!
//! // ...and incremental maintenance under change.
//! let mut m = DynamicTriangleKCore::new(g);
//! m.remove_edge_between(VertexId(0), VertexId(1)).unwrap();
//! assert!(m.graph().edge_ids().all(|e| m.kappa(e) == 3));
//! ```

// Kernel crate: peel/update hot loops index CSR arrays and bucket
// queues whose bounds are structural invariants (checked in debug and by
// the tkc-verify oracle). The strict panic-surface wall (deny) applies to
// tkc-engine; here checked access would cost the inner loops. See
// DESIGN.md §11 and analyze.toml.
#![allow(clippy::indexing_slicing, clippy::expect_used)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decompose;
pub mod dynamic;
pub mod extract;
pub mod kcore;
pub mod ooc;
pub mod peel_parallel;
pub mod persist;
pub mod reference;

/// Convenient glob import of the main types and entry points.
pub mod prelude {
    pub use crate::decompose::{triangle_kcore_decomposition, Decomposition};
    pub use crate::dynamic::{BatchOp, DynamicTriangleKCore, UpdateStats};
    pub use crate::extract::{
        core_hierarchy, cores_at_level, densest_cliques, maximum_core_of_edge, vertex_density, Core,
    };
    pub use crate::kcore::core_numbers;
}
