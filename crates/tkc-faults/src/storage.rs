//! The [`WalStorage`] abstraction and its real-filesystem implementation.
//!
//! The engine's write-ahead log does exactly four things to its backing
//! store: read it all back at open, write a byte run at an offset, fsync,
//! and truncate. Narrowing the surface to those four calls is what makes
//! deterministic fault injection tractable — every disk interaction of
//! the durability path flows through one small trait that a test harness
//! can wrap.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The storage surface the write-ahead log runs on.
///
/// Implementations must be positionally explicit (`write_at` names its
/// offset) so a wrapper can reason about byte-exact torn writes without
/// tracking hidden cursor state.
pub trait WalStorage: Send + std::fmt::Debug {
    /// Reads the entire current contents.
    fn read_all(&mut self) -> std::io::Result<Vec<u8>>;

    /// Writes `data` starting at byte `offset` (extending the file as
    /// needed). A clean return means every byte was accepted by the OS —
    /// not that it is durable; that is what [`WalStorage::sync`] is for.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> std::io::Result<()>;

    /// Flushes written data to stable storage (`fdatasync` semantics).
    fn sync(&mut self) -> std::io::Result<()>;

    /// Truncates (or extends with zeros) to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> std::io::Result<()>;
}

/// The real thing: a read/write [`File`] opened without truncation.
#[derive(Debug)]
pub struct DiskFile {
    file: File,
}

impl DiskFile {
    /// Opens (creating if absent) the file at `path` for WAL duty.
    pub fn open(path: &Path) -> std::io::Result<DiskFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(DiskFile { file })
    }
}

impl WalStorage for DiskFile {
    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn disk_file_round_trips_offset_writes() {
        let dir = std::env::temp_dir().join("tkc_faults_storage_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.bin");
        std::fs::remove_file(&path).ok();

        let mut f = DiskFile::open(&path).unwrap();
        f.write_at(0, b"hello world").unwrap();
        f.write_at(6, b"there").unwrap();
        f.sync().unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello there");
        f.set_len(5).unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello");
        // Appending past the end extends the file.
        f.write_at(5, b"!").unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello!");
    }
}
