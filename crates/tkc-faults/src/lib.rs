//! # tkc-faults — deterministic fault injection for durable storage
//!
//! The maintenance algorithms of the paper only matter in production if
//! the loop that runs them survives real failure: torn writes, full
//! disks, failing fsyncs, silent corruption, and processes dying at
//! arbitrary byte offsets. This crate makes those failures *injectable,
//! deterministic, and seed-driven* so the engine's recovery story can be
//! tested like any other code path:
//!
//! * [`storage`] — the [`WalStorage`] trait the engine's write-ahead log
//!   writes through, plus [`DiskFile`], the real-filesystem
//!   implementation.
//! * [`plan`] — [`FaultPlan`]: an armed schedule of [`Failpoint`]s
//!   (`ShortWrite`, `Enospc`, `Eio`, `BitFlip`, `Crash`), either parsed
//!   from an operator spec string (`wal.append=enospc@100`) or generated
//!   from a seed for chaos soaks.
//! * [`faultfs`] — [`FaultFile`], a [`WalStorage`] wrapper that consults
//!   a shared [`FaultPlan`] on every call and injects the scheduled
//!   failures, byte-exactly and reproducibly.
//!
//! Everything is `std`-only and dependency-free; the crate knows nothing
//! about graphs or κ — it is the bottom of the stack on purpose, so the
//! engine can depend on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faultfs;
pub mod plan;
pub mod storage;

pub use faultfs::{is_injected_crash, FaultFile};
pub use plan::{Failpoint, FaultKind, FaultPlan, FaultSite};
pub use storage::{DiskFile, WalStorage};

/// One step of the xorshift64* generator used everywhere this crate needs
/// deterministic pseudo-randomness (bit-flip positions, short-write cuts,
/// seeded schedules, backoff jitter). Public so the engine's recovery
/// supervisor can jitter its backoff from the same primitive.
pub fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    if x == 0 {
        x = 0x9E37_79B9_7F4A_7C15;
    }
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}
