//! Failpoint schedules: *what* to inject, *where*, and *when* — armed once
//! and consumed deterministically by [`crate::FaultFile`].
//!
//! A [`FaultPlan`] is a shared, thread-safe schedule of [`Failpoint`]s.
//! Each failpoint names a storage site (`wal.append`, `wal.fsync`,
//! `wal.truncate`, `wal.open`), a [`FaultKind`], a 1-based trigger, and a
//! repeat count. Two front doors build plans:
//!
//! * [`FaultPlan::parse_spec`] — the operator syntax used by
//!   `tkc serve --failpoint`, e.g. `wal.append=enospc@100` ("the 100th
//!   WAL append fails with ENOSPC") or `wal.fsync=eio@5x3` ("fsyncs 5, 6,
//!   and 7 fail with EIO").
//! * [`FaultPlan::seeded`] — a pseudo-random schedule derived entirely
//!   from a seed, used by the chaos soak to sweep hundreds of distinct
//!   failure shapes reproducibly.
//!
//! `Crash` failpoints on the append site are special: their trigger is a
//! **byte offset**, not an invocation index — the write that would carry
//! the log past that offset is torn at the boundary and every subsequent
//! storage call fails, which is exactly what a power cut mid-`write(2)`
//! looks like to the next process that opens the file.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::xorshift;

/// A storage or replication-link call site a failpoint can attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// `wal.open` — the full-file read at recovery.
    Open,
    /// `wal.append` — a record-batch write.
    Append,
    /// `wal.fsync` — the durability barrier after a write.
    Fsync,
    /// `wal.truncate` — torn-tail truncation and log reset.
    Truncate,
    /// `repl.connect` — a follower dialing its primary.
    ReplConnect,
    /// `repl.send` — one replication frame leaving a node.
    ReplSend,
    /// `repl.recv` — one replication frame arriving at a node.
    ReplRecv,
}

impl FaultSite {
    pub(crate) fn index(self) -> usize {
        match self {
            FaultSite::Open => 0,
            FaultSite::Append => 1,
            FaultSite::Fsync => 2,
            FaultSite::Truncate => 3,
            FaultSite::ReplConnect => 4,
            FaultSite::ReplSend => 5,
            FaultSite::ReplRecv => 6,
        }
    }

    /// The spec-string name (`wal.append` etc.).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::Open => "wal.open",
            FaultSite::Append => "wal.append",
            FaultSite::Fsync => "wal.fsync",
            FaultSite::Truncate => "wal.truncate",
            FaultSite::ReplConnect => "repl.connect",
            FaultSite::ReplSend => "repl.send",
            FaultSite::ReplRecv => "repl.recv",
        }
    }

    /// Parses a spec-string site name.
    pub fn parse(s: &str) -> Option<FaultSite> {
        match s {
            "wal.open" => Some(FaultSite::Open),
            "wal.append" => Some(FaultSite::Append),
            "wal.fsync" => Some(FaultSite::Fsync),
            "wal.truncate" => Some(FaultSite::Truncate),
            "repl.connect" => Some(FaultSite::ReplConnect),
            "repl.send" => Some(FaultSite::ReplSend),
            "repl.recv" => Some(FaultSite::ReplRecv),
            _ => None,
        }
    }
}

/// What a fired failpoint does to the storage call it intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Write a strict prefix of the data, then fail — a torn write.
    ShortWrite,
    /// Fail with `ENOSPC` before writing anything — a full disk.
    Enospc,
    /// Fail with `EIO` — a generic medium error (the classic failed
    /// fsync).
    Eio,
    /// Flip one bit of the data and *succeed* — silent corruption that
    /// only the recovery checksum can catch.
    BitFlip,
    /// Die: tear the write at a byte offset and fail every later call
    /// until [`FaultPlan::clear_crash`] simulates a process restart.
    Crash,
    /// Block for ~100ms, then fail with `TimedOut` — a hung link or
    /// slow peer. Exercises reconnect/backoff machinery, not data paths.
    Stall,
}

impl FaultKind {
    /// The spec-string name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::ShortWrite => "short",
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::BitFlip => "bitflip",
            FaultKind::Crash => "crash",
            FaultKind::Stall => "stall",
        }
    }

    /// Parses a spec-string kind name.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "short" => Some(FaultKind::ShortWrite),
            "enospc" => Some(FaultKind::Enospc),
            "eio" => Some(FaultKind::Eio),
            "bitflip" => Some(FaultKind::BitFlip),
            "crash" => Some(FaultKind::Crash),
            "stall" => Some(FaultKind::Stall),
            _ => None,
        }
    }
}

/// One armed injection: at invocations `trigger..trigger + count` of
/// `site`, inject `kind`. (`Crash` on the append site reads `trigger` as
/// a byte offset instead; `count` is ignored for crashes.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failpoint {
    /// Which storage call to intercept.
    pub site: FaultSite,
    /// What to inject.
    pub kind: FaultKind,
    /// 1-based invocation index (byte offset for append-site crashes).
    pub trigger: u64,
    /// Consecutive invocations to fail (≥ 1).
    pub count: u64,
}

impl fmt::Display for Failpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={}@{}",
            self.site.as_str(),
            self.kind.as_str(),
            self.trigger
        )?;
        if self.count > 1 {
            write!(f, "x{}", self.count)?;
        }
        Ok(())
    }
}

/// A shared, deterministic schedule of failpoints plus the counters that
/// drive it. Wrap in an `Arc` and hand clones to every storage instance
/// that should participate — counters are global to the plan, so a
/// failpoint keeps its place across WAL re-opens.
#[derive(Debug, Default)]
pub struct FaultPlan {
    points: Mutex<Vec<Failpoint>>,
    /// Per-site invocation counts, indexed by [`FaultSite::index`].
    calls: [AtomicU64; 7],
    /// Bytes successfully handed to the inner storage by append writes —
    /// the clock for byte-offset crash triggers.
    bytes_written: AtomicU64,
    crashed: AtomicBool,
    injected: AtomicU64,
    rng: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (injects nothing until failpoints are pushed).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with an explicit failpoint list and RNG seed.
    pub fn with_points(points: Vec<Failpoint>, seed: u64) -> FaultPlan {
        let plan = FaultPlan::new();
        *lock(&plan.points) = points;
        plan.rng.store(seed.max(1), Ordering::Relaxed);
        plan
    }

    /// Parses the operator failpoint syntax: comma-separated
    /// `site=kind@trigger[xCOUNT]` clauses, e.g.
    /// `wal.append=enospc@100,wal.fsync=eio@5x3`.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut points = Vec::new();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (site, rest) = clause
                .split_once('=')
                .ok_or_else(|| format!("failpoint {clause:?}: expected site=kind@trigger"))?;
            let site = FaultSite::parse(site)
                .ok_or_else(|| format!("failpoint {clause:?}: unknown site {site:?}"))?;
            let (kind, when) = rest
                .split_once('@')
                .ok_or_else(|| format!("failpoint {clause:?}: expected kind@trigger"))?;
            let kind = FaultKind::parse(kind)
                .ok_or_else(|| format!("failpoint {clause:?}: unknown kind {kind:?}"))?;
            let (trigger, count) = match when.split_once('x') {
                Some((t, c)) => (t, c),
                None => (when, "1"),
            };
            let trigger: u64 = trigger
                .parse()
                .map_err(|_| format!("failpoint {clause:?}: bad trigger {trigger:?}"))?;
            let count: u64 = count
                .parse()
                .map_err(|_| format!("failpoint {clause:?}: bad count {count:?}"))?;
            if trigger == 0 || count == 0 {
                return Err(format!(
                    "failpoint {clause:?}: trigger and count are 1-based"
                ));
            }
            points.push(Failpoint {
                site,
                kind,
                trigger,
                count,
            });
        }
        if points.is_empty() {
            return Err("failpoint spec is empty".to_string());
        }
        Ok(FaultPlan::with_points(points, 0x5EED))
    }

    /// A pseudo-random schedule derived entirely from `seed`: one to
    /// three failpoints over the append/fsync/truncate sites, with
    /// triggers inside `appends_hint` invocations (crashes inside
    /// `bytes_hint` bytes). Same seed, same schedule — the chaos soak's
    /// reproducibility contract.
    pub fn seeded(seed: u64, appends_hint: u64, bytes_hint: u64) -> FaultPlan {
        let mut s = seed | 1;
        let appends = appends_hint.max(1);
        let bytes = bytes_hint.max(64);
        let n_points = 1 + xorshift(&mut s) % 3;
        let mut points = Vec::new();
        for _ in 0..n_points {
            let roll = xorshift(&mut s) % 100;
            let (site, kind) = match roll {
                0..=24 => (FaultSite::Append, FaultKind::Enospc),
                25..=44 => (FaultSite::Fsync, FaultKind::Eio),
                45..=64 => (FaultSite::Append, FaultKind::ShortWrite),
                65..=79 => (FaultSite::Append, FaultKind::BitFlip),
                80..=89 => (FaultSite::Truncate, FaultKind::Eio),
                _ => (FaultSite::Append, FaultKind::Crash),
            };
            // Crash triggers are byte offsets past the 8-byte header;
            // invocation triggers start at 2 so the one-time magic-header
            // write (invocation 1 on a fresh file) is never the victim —
            // corrupting it would make the file alien by design, which is
            // detection working, not a recoverable fault.
            let trigger = if kind == FaultKind::Crash {
                8 + xorshift(&mut s) % bytes
            } else {
                2 + xorshift(&mut s) % appends
            };
            let count = 1 + xorshift(&mut s) % 2;
            points.push(Failpoint {
                site,
                kind,
                trigger,
                count,
            });
        }
        FaultPlan::with_points(points, seed)
    }

    /// A pseudo-random **replication-link** schedule derived entirely
    /// from `seed`: one to three failpoints over the
    /// `repl.connect`/`repl.send`/`repl.recv` sites with the link fault
    /// kinds (eio, short, bitflip, stall), triggered inside
    /// `events_hint` link events. Same seed, same schedule — the
    /// replication chaos harness's reproducibility contract.
    pub fn seeded_repl(seed: u64, events_hint: u64) -> FaultPlan {
        let mut s = (seed ^ 0xD1FF_5EED) | 1;
        let events = events_hint.max(4);
        let n_points = 1 + xorshift(&mut s) % 3;
        let mut points = Vec::new();
        for _ in 0..n_points {
            let roll = xorshift(&mut s) % 100;
            let (site, kind) = match roll {
                0..=19 => (FaultSite::ReplConnect, FaultKind::Eio),
                20..=39 => (FaultSite::ReplSend, FaultKind::Eio),
                40..=54 => (FaultSite::ReplRecv, FaultKind::Eio),
                55..=69 => (FaultSite::ReplSend, FaultKind::ShortWrite),
                70..=84 => (FaultSite::ReplRecv, FaultKind::BitFlip),
                85..=92 => (FaultSite::ReplSend, FaultKind::Stall),
                _ => (FaultSite::ReplRecv, FaultKind::Stall),
            };
            let trigger = 1 + xorshift(&mut s) % events;
            let count = 1 + xorshift(&mut s) % 2;
            points.push(Failpoint {
                site,
                kind,
                trigger,
                count,
            });
        }
        FaultPlan::with_points(points, seed)
    }

    /// Adds one failpoint to the schedule.
    pub fn push(&self, fp: Failpoint) {
        lock(&self.points).push(fp);
    }

    /// The front door for non-storage call sites (the replication link):
    /// registers one invocation of `site` and returns the fault kind
    /// scheduled to fire at it, if any, counting the injection. Unlike
    /// the [`crate::FaultFile`] path the caller interprets the kind
    /// itself (drop the connection, corrupt the frame, stall...).
    pub fn inject(&self, site: FaultSite) -> Option<FaultKind> {
        let n = self.bump(site);
        let kind = self.fire(site, n)?;
        self.note_injection();
        Some(kind)
    }

    /// Total injections performed so far (every kind, bit-flips
    /// included).
    pub fn injected_total(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// True once a `Crash` failpoint has fired: every storage call fails
    /// until [`FaultPlan::clear_crash`].
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Simulates a process restart: clears the crash latch and disarms
    /// every `Crash` failpoint (the process that died does not die again
    /// at the same offset — the bytes are already on disk).
    pub fn clear_crash(&self) {
        lock(&self.points).retain(|fp| fp.kind != FaultKind::Crash);
        self.crashed.store(false, Ordering::Relaxed);
    }

    /// Removes every failpoint and clears the crash latch: subsequent
    /// storage calls pass straight through. Harnesses use this for their
    /// durability epilogue (run faulted, then prove a clean close/reopen
    /// round-trips).
    pub fn disarm(&self) {
        lock(&self.points).clear();
        self.crashed.store(false, Ordering::Relaxed);
    }

    /// The armed schedule, for logging.
    pub fn describe(&self) -> String {
        let points = lock(&self.points);
        if points.is_empty() {
            return "(no failpoints)".to_string();
        }
        points
            .iter()
            .map(|fp| fp.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Draws from the plan's deterministic RNG (bit positions, cut
    /// lengths).
    pub(crate) fn draw(&self) -> u64 {
        let mut s = self.rng.load(Ordering::Relaxed);
        let out = xorshift(&mut s);
        self.rng.store(s, Ordering::Relaxed);
        out
    }

    /// Registers one invocation of `site` and returns its 1-based index.
    pub(crate) fn bump(&self, site: FaultSite) -> u64 {
        self.calls
            .get(site.index())
            .map_or(0, |c| c.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// The non-crash kind scheduled for invocation `n` of `site`, if any.
    pub(crate) fn fire(&self, site: FaultSite, n: u64) -> Option<FaultKind> {
        let points = lock(&self.points);
        points
            .iter()
            .find(|fp| {
                fp.site == site
                    && fp.kind != FaultKind::Crash
                    && n >= fp.trigger
                    && n < fp.trigger + fp.count
            })
            .map(|fp| fp.kind)
    }

    /// The byte-offset crash armed on the append site, if any.
    pub(crate) fn append_crash_offset(&self) -> Option<u64> {
        lock(&self.points)
            .iter()
            .find(|fp| fp.site == FaultSite::Append && fp.kind == FaultKind::Crash)
            .map(|fp| fp.trigger)
    }

    /// The invocation-indexed crash armed on `site` (non-append), if any.
    pub(crate) fn crash_at(&self, site: FaultSite, n: u64) -> bool {
        lock(&self.points)
            .iter()
            .any(|fp| fp.site == site && fp.kind == FaultKind::Crash && n >= fp.trigger)
    }

    pub(crate) fn note_injection(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn latch_crash(&self) {
        self.crashed.store(true, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes(&self, n: u64) -> u64 {
        self.bytes_written.fetch_add(n, Ordering::Relaxed) + n
    }

    pub(crate) fn bytes_so_far(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn spec_round_trips() {
        let plan = FaultPlan::parse_spec("wal.append=enospc@100,wal.fsync=eio@5x3").unwrap();
        assert_eq!(plan.describe(), "wal.append=enospc@100,wal.fsync=eio@5x3");
        assert_eq!(plan.fire(FaultSite::Append, 100), Some(FaultKind::Enospc));
        assert_eq!(plan.fire(FaultSite::Append, 99), None);
        assert_eq!(plan.fire(FaultSite::Append, 101), None);
        assert_eq!(plan.fire(FaultSite::Fsync, 7), Some(FaultKind::Eio));
        assert_eq!(plan.fire(FaultSite::Fsync, 8), None);
    }

    #[test]
    fn spec_rejects_garbage() {
        for bad in [
            "",
            "nonsense",
            "wal.append=frobnicate@1",
            "disk.append=enospc@1",
            "wal.append=enospc@zero",
            "wal.append=enospc@0",
            "wal.append=enospc@1x0",
        ] {
            assert!(FaultPlan::parse_spec(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_nonempty() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded(seed, 100, 1700);
            let b = FaultPlan::seeded(seed, 100, 1700);
            assert_eq!(a.describe(), b.describe(), "seed {seed}");
            assert_ne!(a.describe(), "(no failpoints)");
        }
        // Different seeds diverge somewhere in a small window.
        let shapes: std::collections::BTreeSet<String> = (0..16)
            .map(|s| FaultPlan::seeded(s, 100, 1700).describe())
            .collect();
        assert!(shapes.len() > 4, "only {} distinct schedules", shapes.len());
    }

    #[test]
    fn repl_sites_parse_and_round_trip() {
        for site in [
            FaultSite::ReplConnect,
            FaultSite::ReplSend,
            FaultSite::ReplRecv,
        ] {
            assert_eq!(FaultSite::parse(site.as_str()), Some(site));
        }
        assert_eq!(FaultKind::parse("stall"), Some(FaultKind::Stall));
        let plan = FaultPlan::parse_spec("repl.send=stall@2,repl.connect=eio@1x2").unwrap();
        assert_eq!(plan.describe(), "repl.send=stall@2,repl.connect=eio@1x2");
        // inject() is the bump-and-fire front door for link sites.
        assert_eq!(plan.inject(FaultSite::ReplSend), None);
        assert_eq!(plan.inject(FaultSite::ReplSend), Some(FaultKind::Stall));
        assert_eq!(plan.inject(FaultSite::ReplConnect), Some(FaultKind::Eio));
        assert_eq!(plan.inject(FaultSite::ReplConnect), Some(FaultKind::Eio));
        assert_eq!(plan.inject(FaultSite::ReplConnect), None);
        assert_eq!(plan.injected_total(), 3);
    }

    #[test]
    fn seeded_repl_schedules_are_deterministic_and_link_only() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded_repl(seed, 32);
            let b = FaultPlan::seeded_repl(seed, 32);
            assert_eq!(a.describe(), b.describe(), "seed {seed}");
            assert!(
                a.describe().split(',').all(|p| p.starts_with("repl.")),
                "non-link site in {}",
                a.describe()
            );
        }
    }

    #[test]
    fn crash_latch_clears_on_restart() {
        let plan = FaultPlan::with_points(
            vec![Failpoint {
                site: FaultSite::Append,
                kind: FaultKind::Crash,
                trigger: 64,
                count: 1,
            }],
            7,
        );
        assert_eq!(plan.append_crash_offset(), Some(64));
        plan.latch_crash();
        assert!(plan.crashed());
        plan.clear_crash();
        assert!(!plan.crashed());
        assert_eq!(plan.append_crash_offset(), None);
    }
}
