//! [`FaultFile`]: a [`WalStorage`] wrapper that injects the failures a
//! [`FaultPlan`] schedules.
//!
//! Injection semantics, chosen to mirror what real kernels and disks do:
//!
//! * `ShortWrite` — a strict prefix of the data reaches the inner
//!   storage, then the call fails with `WriteZero`. On `read_all` it
//!   models a short read: a prefix of the file comes back with no error.
//! * `Enospc` / `Eio` — the call fails with the corresponding raw OS
//!   error (`ENOSPC` = 28, `EIO` = 5) before touching the inner storage.
//! * `BitFlip` — one pseudo-randomly chosen bit of the payload is
//!   flipped and the call *succeeds*. Nothing notices until a recovery
//!   checksum does.
//! * `Crash` — on the append site the trigger is a byte offset: the
//!   write that would carry the log past it is torn at exactly that
//!   boundary, then the crash latch closes and **every** storage call
//!   fails with [`is_injected_crash`]-recognizable errors until
//!   [`FaultPlan::clear_crash`] simulates a restart.
//!
//! All randomness (cut lengths, bit positions) comes from the plan's
//! seeded generator, so a failing schedule replays byte-for-byte.

use std::io;
use std::sync::Arc;

use crate::plan::{FaultKind, FaultPlan, FaultSite};
use crate::storage::WalStorage;

/// Message prefix on every error produced by the crash latch.
const CRASH_MSG: &str = "injected crash";

/// True if `err` came from a tripped crash latch (as opposed to an
/// injected-but-survivable fault or a real I/O failure).
pub fn is_injected_crash(err: &io::Error) -> bool {
    err.to_string().starts_with(CRASH_MSG)
}

fn crash_error() -> io::Error {
    io::Error::other(format!("{CRASH_MSG}: storage unreachable until restart"))
}

fn os_error(kind: FaultKind, site: FaultSite) -> io::Error {
    if kind == FaultKind::Stall {
        // A hung peer: block noticeably, then time out.
        std::thread::sleep(std::time::Duration::from_millis(100));
        return io::Error::new(
            io::ErrorKind::TimedOut,
            format!("injected stall at {}: timed out", site.as_str()),
        );
    }
    let code = match kind {
        FaultKind::Enospc => 28, // ENOSPC
        _ => 5,                  // EIO covers everything else non-write-shaped
    };
    let base = io::Error::from_raw_os_error(code);
    io::Error::new(
        base.kind(),
        format!("injected {} at {}: {base}", kind.as_str(), site.as_str()),
    )
}

/// A [`WalStorage`] that consults a shared [`FaultPlan`] before (and
/// sometimes instead of) delegating to the wrapped storage.
#[derive(Debug)]
pub struct FaultFile {
    inner: Box<dyn WalStorage>,
    plan: Arc<FaultPlan>,
}

impl FaultFile {
    /// Wraps `inner` so every call is subject to `plan`.
    pub fn new(inner: Box<dyn WalStorage>, plan: Arc<FaultPlan>) -> FaultFile {
        FaultFile { inner, plan }
    }

    fn check_latch(&self) -> io::Result<()> {
        if self.plan.crashed() {
            return Err(crash_error());
        }
        Ok(())
    }
}

impl WalStorage for FaultFile {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.check_latch()?;
        let n = self.plan.bump(FaultSite::Open);
        if self.plan.crash_at(FaultSite::Open, n) {
            self.plan.latch_crash();
            self.plan.note_injection();
            return Err(crash_error());
        }
        match self.plan.fire(FaultSite::Open, n) {
            Some(kind @ (FaultKind::Enospc | FaultKind::Eio | FaultKind::Stall)) => {
                self.plan.note_injection();
                Err(os_error(kind, FaultSite::Open))
            }
            Some(FaultKind::ShortWrite) => {
                // A short read: hand back a prefix with no error at all.
                let mut buf = self.inner.read_all()?;
                if !buf.is_empty() {
                    let keep = (self.plan.draw() % buf.len() as u64) as usize;
                    buf.truncate(keep);
                }
                self.plan.note_injection();
                Ok(buf)
            }
            Some(FaultKind::BitFlip) => {
                let mut buf = self.inner.read_all()?;
                if !buf.is_empty() {
                    let bit = self.plan.draw() % (buf.len() as u64 * 8);
                    if let Some(byte) = buf.get_mut((bit / 8) as usize) {
                        *byte ^= 1 << (bit % 8);
                    }
                }
                self.plan.note_injection();
                Ok(buf)
            }
            Some(FaultKind::Crash) | None => self.inner.read_all(),
        }
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.check_latch()?;
        let n = self.plan.bump(FaultSite::Append);
        // Byte-offset crash: tear the write exactly at the armed offset.
        if let Some(limit) = self.plan.append_crash_offset() {
            let so_far = self.plan.bytes_so_far();
            if so_far + data.len() as u64 > limit {
                let keep = limit.saturating_sub(so_far) as usize;
                if let Some(prefix) = data.get(..keep).filter(|p| !p.is_empty()) {
                    self.inner.write_at(offset, prefix)?;
                    let _ = self.inner.sync();
                    self.plan.add_bytes(keep as u64);
                }
                self.plan.latch_crash();
                self.plan.note_injection();
                return Err(crash_error());
            }
        }
        match self.plan.fire(FaultSite::Append, n) {
            Some(FaultKind::ShortWrite) => {
                let keep = if data.is_empty() {
                    0
                } else {
                    (self.plan.draw() % data.len() as u64) as usize
                };
                if let Some(prefix) = data.get(..keep).filter(|p| !p.is_empty()) {
                    self.inner.write_at(offset, prefix)?;
                    self.plan.add_bytes(keep as u64);
                }
                self.plan.note_injection();
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!(
                        "injected short write at wal.append: {keep} of {} bytes",
                        data.len()
                    ),
                ))
            }
            Some(kind @ (FaultKind::Enospc | FaultKind::Eio | FaultKind::Stall)) => {
                self.plan.note_injection();
                Err(os_error(kind, FaultSite::Append))
            }
            Some(FaultKind::BitFlip) => {
                let mut corrupt = data.to_vec();
                if !corrupt.is_empty() {
                    let bit = self.plan.draw() % (corrupt.len() as u64 * 8);
                    if let Some(byte) = corrupt.get_mut((bit / 8) as usize) {
                        *byte ^= 1 << (bit % 8);
                    }
                }
                self.inner.write_at(offset, &corrupt)?;
                self.plan.add_bytes(data.len() as u64);
                self.plan.note_injection();
                Ok(())
            }
            Some(FaultKind::Crash) | None => {
                self.inner.write_at(offset, data)?;
                self.plan.add_bytes(data.len() as u64);
                Ok(())
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.check_latch()?;
        let n = self.plan.bump(FaultSite::Fsync);
        if self.plan.crash_at(FaultSite::Fsync, n) {
            self.plan.latch_crash();
            self.plan.note_injection();
            return Err(crash_error());
        }
        match self.plan.fire(FaultSite::Fsync, n) {
            Some(kind) => {
                self.plan.note_injection();
                Err(os_error(kind, FaultSite::Fsync))
            }
            None => self.inner.sync(),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.check_latch()?;
        let n = self.plan.bump(FaultSite::Truncate);
        if self.plan.crash_at(FaultSite::Truncate, n) {
            self.plan.latch_crash();
            self.plan.note_injection();
            return Err(crash_error());
        }
        match self.plan.fire(FaultSite::Truncate, n) {
            Some(kind) => {
                self.plan.note_injection();
                Err(os_error(kind, FaultSite::Truncate))
            }
            None => self.inner.set_len(len),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;
    use crate::plan::Failpoint;

    /// In-memory storage double so tests stay off the filesystem.
    #[derive(Debug, Default)]
    struct MemFile {
        bytes: Vec<u8>,
    }

    impl WalStorage for MemFile {
        fn read_all(&mut self) -> io::Result<Vec<u8>> {
            Ok(self.bytes.clone())
        }

        fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
            let end = offset as usize + data.len();
            if self.bytes.len() < end {
                self.bytes.resize(end, 0);
            }
            self.bytes[offset as usize..end].copy_from_slice(data);
            Ok(())
        }

        fn sync(&mut self) -> io::Result<()> {
            Ok(())
        }

        fn set_len(&mut self, len: u64) -> io::Result<()> {
            self.bytes.truncate(len as usize);
            Ok(())
        }
    }

    fn faulted(points: Vec<Failpoint>) -> (FaultFile, Arc<FaultPlan>) {
        let plan = Arc::new(FaultPlan::with_points(points, 42));
        let file = FaultFile::new(Box::new(MemFile::default()), Arc::clone(&plan));
        (file, plan)
    }

    #[test]
    fn enospc_fails_with_raw_os_error_28() {
        let (mut f, plan) = faulted(vec![Failpoint {
            site: FaultSite::Append,
            kind: FaultKind::Enospc,
            trigger: 2,
            count: 1,
        }]);
        f.write_at(0, b"first").unwrap();
        let err = f.write_at(5, b"second").unwrap_err();
        assert_eq!(err.raw_os_error(), None); // wrapped message, kind survives
        assert_eq!(err.kind(), io::Error::from_raw_os_error(28).kind());
        assert_eq!(plan.injected_total(), 1);
        // The schedule is spent: the next write goes through.
        f.write_at(5, b"third").unwrap();
        assert_eq!(f.read_all().unwrap(), b"firstthird");
    }

    #[test]
    fn short_write_leaves_a_strict_prefix() {
        let (mut f, _plan) = faulted(vec![Failpoint {
            site: FaultSite::Append,
            kind: FaultKind::ShortWrite,
            trigger: 1,
            count: 1,
        }]);
        let err = f.write_at(0, b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        let on_disk = f.read_all().unwrap();
        assert!(
            on_disk.len() < 10,
            "short write wrote all {} bytes",
            on_disk.len()
        );
        assert_eq!(&on_disk[..], &b"0123456789"[..on_disk.len()]);
    }

    #[test]
    fn bit_flip_succeeds_but_corrupts_exactly_one_bit() {
        let (mut f, plan) = faulted(vec![Failpoint {
            site: FaultSite::Append,
            kind: FaultKind::BitFlip,
            trigger: 1,
            count: 1,
        }]);
        let data = b"some precious payload";
        f.write_at(0, data).unwrap();
        assert_eq!(plan.injected_total(), 1);
        let on_disk = f.read_all().unwrap();
        assert_eq!(on_disk.len(), data.len());
        let flipped: u32 = on_disk
            .iter()
            .zip(data.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "expected exactly one flipped bit");
    }

    #[test]
    fn byte_offset_crash_tears_then_latches() {
        let (mut f, plan) = faulted(vec![Failpoint {
            site: FaultSite::Append,
            kind: FaultKind::Crash,
            trigger: 8,
            count: 1,
        }]);
        f.write_at(0, b"sixby").unwrap(); // 5 bytes, under the 8-byte budget
        let err = f.write_at(5, b"sixmore").unwrap_err();
        assert!(is_injected_crash(&err), "unexpected error: {err}");
        // Exactly 8 bytes survived: the 5 acked plus a 3-byte torn prefix.
        assert!(plan.crashed());
        let err = f.sync().unwrap_err();
        assert!(is_injected_crash(&err));
        let err = f.read_all().unwrap_err();
        assert!(is_injected_crash(&err));
        // Restart: latch clears, the torn bytes are visible.
        plan.clear_crash();
        assert_eq!(f.read_all().unwrap(), b"sixbysix");
    }

    #[test]
    fn fsync_eio_fires_on_schedule() {
        let (mut f, plan) = faulted(vec![Failpoint {
            site: FaultSite::Fsync,
            kind: FaultKind::Eio,
            trigger: 2,
            count: 2,
        }]);
        f.sync().unwrap();
        assert!(f.sync().is_err());
        assert!(f.sync().is_err());
        f.sync().unwrap();
        assert_eq!(plan.injected_total(), 2);
    }

    #[test]
    fn short_read_returns_prefix_without_error() {
        let (mut f, _plan) = faulted(vec![Failpoint {
            site: FaultSite::Open,
            kind: FaultKind::ShortWrite,
            trigger: 2,
            count: 1,
        }]);
        f.write_at(0, b"full contents here").unwrap();
        assert_eq!(f.read_all().unwrap(), b"full contents here");
        let short = f.read_all().unwrap();
        assert!(short.len() < 18);
        assert_eq!(&short[..], &b"full contents here"[..short.len()]);
    }
}
