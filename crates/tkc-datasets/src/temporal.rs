//! Multi-snapshot temporal networks: a sequence of aligned graphs (the
//! DBLP yearly files of §VII-E, the Wiki snapshot stream of §VII-D) plus
//! the edit scripts between consecutive snapshots — the natural input for
//! both the dual-view workflow and long-horizon event tracking.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tkc_graph::generators::plant_clique;
use tkc_graph::{Graph, VertexId};

use crate::collaboration::collaboration_snapshot;

/// A sequence of graph snapshots over one aligned vertex universe.
#[derive(Debug, Clone)]
pub struct TemporalNetwork {
    snapshots: Vec<Graph>,
}

impl TemporalNetwork {
    /// Wraps pre-built snapshots, padding all to one vertex count.
    pub fn new(mut snapshots: Vec<Graph>) -> Self {
        let n = snapshots
            .iter()
            .map(|g| g.num_vertices())
            .max()
            .unwrap_or(0);
        for g in &mut snapshots {
            g.add_vertices(n - g.num_vertices());
        }
        TemporalNetwork { snapshots }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when there are no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Snapshot at time `t`.
    pub fn snapshot(&self, t: usize) -> &Graph {
        &self.snapshots[t]
    }

    /// All snapshots.
    pub fn snapshots(&self) -> &[Graph] {
        &self.snapshots
    }

    /// The edit script from snapshot `t` to `t+1`:
    /// `(removed_edges, added_edges)` as vertex pairs.
    pub fn diff(&self, t: usize) -> (crate::scenarios::EdgePairs, crate::scenarios::EdgePairs) {
        let a = &self.snapshots[t];
        let b = &self.snapshots[t + 1];
        let removed = a
            .edges()
            .filter(|&(_, u, v)| !b.has_edge(u, v))
            .map(|(_, u, v)| (u, v))
            .collect();
        let added = b
            .edges()
            .filter(|&(_, u, v)| !a.has_edge(u, v))
            .map(|(_, u, v)| (u, v))
            .collect();
        (removed, added)
    }

    /// Replays the whole series through a dynamic maintainer, verifying
    /// each transition against the next snapshot's edge set. Returns the
    /// per-transition `(removed, added)` counts.
    pub fn replay_with<F>(&self, mut on_snapshot: F) -> Vec<(usize, usize)>
    where
        F: FnMut(usize, &tkc_core::dynamic::DynamicTriangleKCore),
    {
        use tkc_core::dynamic::{BatchOp, DynamicTriangleKCore};
        let mut out = Vec::new();
        if self.snapshots.is_empty() {
            return out;
        }
        let mut m = DynamicTriangleKCore::new(self.snapshots[0].clone());
        on_snapshot(0, &m);
        for t in 0..self.snapshots.len() - 1 {
            let (removed, added) = self.diff(t);
            out.push((removed.len(), added.len()));
            let ops: Vec<BatchOp> = removed
                .iter()
                .map(|&(u, v)| BatchOp::Remove(u, v))
                .chain(added.iter().map(|&(u, v)| BatchOp::Insert(u, v)))
                .collect();
            m.apply_batch(ops);
            debug_assert_eq!(m.graph().num_edges(), self.snapshots[t + 1].num_edges());
            on_snapshot(t + 1, &m);
        }
        out
    }
}

/// A DBLP-style yearly series: `years` collaboration snapshots with team
/// churn, plus one planted *growing* clique that gains a member each year
/// (an easy target for event tracking: grow, grow, …).
pub fn collaboration_series(
    n_authors: usize,
    n_papers: usize,
    years: usize,
    seed: u64,
) -> (TemporalNetwork, Vec<Vec<VertexId>>) {
    assert!(years >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut snapshots = Vec::with_capacity(years);
    let mut planted_by_year = Vec::with_capacity(years);
    let base_members = 4usize;
    for t in 0..years {
        let mut g = collaboration_snapshot(n_authors, n_papers, seed ^ (t as u64 * 0x9e37));
        let grow_to = base_members + t;
        g.add_vertices(base_members + years); // reserve aligned ids
        let members: Vec<VertexId> = (n_authors..n_authors + grow_to)
            .map(VertexId::from)
            .collect();
        plant_clique(&mut g, &members);
        // Anchor to a random veteran so the clique is embedded.
        let anchor = VertexId(rng.gen_range(0..n_authors as u32 / 2));
        let _ = g.try_add_edge(members[0], anchor);
        planted_by_year.push(members);
        snapshots.push(g);
    }
    (TemporalNetwork::new(snapshots), planted_by_year)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_core::decompose::triangle_kcore_decomposition;
    use tkc_patterns::events::{detect_events, Event, EventOptions};

    #[test]
    fn diff_roundtrips_between_snapshots() {
        let (net, _) = collaboration_series(300, 150, 3, 5);
        let (removed, added) = net.diff(0);
        assert!(!removed.is_empty() && !added.is_empty());
        // Applying the diff to snapshot 0 yields snapshot 1's edge set.
        let mut g = net.snapshot(0).clone();
        for (u, v) in removed {
            g.remove_edge_between(u, v).unwrap();
        }
        for (u, v) in added {
            g.add_edge(u, v).unwrap();
        }
        assert_eq!(g.num_edges(), net.snapshot(1).num_edges());
        for (_, u, v) in net.snapshot(1).edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn replay_maintains_exact_kappa_over_the_series() {
        let (net, _) = collaboration_series(250, 120, 4, 9);
        let mut checked = 0;
        net.replay_with(|t, m| {
            let fresh = triangle_kcore_decomposition(m.graph());
            for e in m.graph().edge_ids() {
                assert_eq!(m.kappa(e), fresh.kappa(e), "year {t}");
            }
            checked += 1;
        });
        assert_eq!(checked, 4);
    }

    #[test]
    fn planted_clique_grows_year_over_year() {
        let (net, planted) = collaboration_series(250, 120, 4, 3);
        for t in 0..net.len() - 1 {
            let rep = detect_events(
                net.snapshot(t),
                net.snapshot(t + 1),
                planted[t].len() as u32 - 2,
                &EventOptions::default(),
            );
            // The planted clique must register as growth — or as a high-
            // overlap continue (gaining 1 of 4 members sits exactly at the
            // 0.8 Jaccard stability boundary), or a merge if a background
            // team fused with it.
            let hit = rep.events.iter().any(|e| {
                matches!(e,
                    Event::Grow { after, .. }
                    | Event::Merge { after, .. }
                    | Event::Continue { after, .. }
                    if planted[t + 1].iter().all(|v| rep.new_cores[*after].vertices.contains(v)))
            });
            assert!(hit, "growth of the planted clique missed in year {t}");
        }
    }

    #[test]
    fn empty_and_single_snapshot_edge_cases() {
        let net = TemporalNetwork::new(vec![]);
        assert!(net.is_empty());
        assert!(net.replay_with(|_, _| {}).is_empty());
        let net = TemporalNetwork::new(vec![tkc_graph::generators::complete(4)]);
        assert_eq!(net.len(), 1);
        let counts = net.replay_with(|_, _| {});
        assert!(counts.is_empty());
    }
}
