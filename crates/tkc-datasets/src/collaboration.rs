//! Collaboration networks — the stand-in for the paper's *DBLP* data:
//! authors (vertices) co-author papers (small cliques), with prolific
//! authors, persistent teams and yearly churn. Provides both single
//! snapshots (Table I/II) and consecutive snapshot pairs for the template
//! pattern case studies (Figures 9–11).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tkc_graph::generators::plant_clique;
use tkc_graph::{Graph, VertexId};

/// One co-authorship snapshot: `n_papers` teams of 2–6 authors drawn from
/// `n_authors` with a prolific-author skew; the graph is the union of the
/// team cliques.
pub fn collaboration_snapshot(n_authors: usize, n_papers: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n_authors, n_papers * 4);
    for _ in 0..n_papers {
        let team = sample_team(&mut rng, n_authors);
        plant_clique(&mut g, &team);
    }
    g
}

/// Samples one author team: size 2–6, members drawn with a quadratic skew
/// toward low ids (the "prolific author" effect).
fn sample_team(rng: &mut SmallRng, n_authors: usize) -> Vec<VertexId> {
    const SIZES: [usize; 9] = [2, 2, 3, 3, 3, 4, 4, 5, 6];
    let size = SIZES[rng.gen_range(0..SIZES.len())];
    let mut team: Vec<VertexId> = Vec::with_capacity(size);
    let mut guard = 0;
    while team.len() < size && guard < 100 {
        guard += 1;
        // Quadratic skew: u² stretches the mass toward small indices.
        let u: f64 = rng.gen::<f64>();
        let idx = ((u * u) * n_authors as f64) as usize;
        let v = VertexId::from(idx.min(n_authors - 1));
        if !team.contains(&v) {
            team.push(v);
        }
    }
    team
}

/// A pair of consecutive snapshots: year two keeps `carry` of year one's
/// papers (stable teams), replaces the rest, and involves some authors who
/// never appeared before. Vertex ids are aligned across both.
pub fn snapshot_pair(n_authors: usize, n_papers: usize, carry: f64, seed: u64) -> (Graph, Graph) {
    assert!((0.0..=1.0).contains(&carry));
    let mut rng = SmallRng::seed_from_u64(seed);
    // Year one uses only the first 80% of the author universe, so year two
    // has genuinely new authors to draw from.
    let old_pool = (n_authors * 4) / 5;
    let papers1: Vec<Vec<VertexId>> = (0..n_papers)
        .map(|_| sample_team(&mut rng, old_pool))
        .collect();
    let kept = (carry * n_papers as f64) as usize;
    let mut papers2: Vec<Vec<VertexId>> = papers1[..kept].to_vec();
    while papers2.len() < n_papers {
        papers2.push(sample_team(&mut rng, n_authors));
    }
    let mut g1 = Graph::with_capacity(n_authors, n_papers * 4);
    for team in &papers1 {
        plant_clique(&mut g1, team);
    }
    let mut g2 = Graph::with_capacity(n_authors, n_papers * 4);
    for team in &papers2 {
        plant_clique(&mut g2, team);
    }
    (g1, g2)
}

/// Figure 9 scenario: a snapshot pair plus a planted **New Form** clique —
/// `size` authors all present in year one (in scattered teams) who
/// collaborate for the first time in year two. Returns the pair and the
/// planted members.
pub fn new_form_scenario(
    n_authors: usize,
    n_papers: usize,
    size: usize,
    seed: u64,
) -> (Graph, Graph, Vec<VertexId>) {
    let (g1, mut g2, mut rng) = base_pair(n_authors, n_papers, seed);
    // Pick authors active in year one but pairwise non-adjacent there.
    let members = pick_scattered_veterans(&g1, size, &mut rng);
    // Remove any year-two edges among them first (they must be *new*), then
    // plant the clique.
    for (i, &u) in members.iter().enumerate() {
        for &v in &members[i + 1..] {
            let _ = g2.remove_edge_between(u, v);
        }
    }
    plant_clique(&mut g2, &members);
    (g1, g2, members)
}

/// Figure 10 scenario: a planted **Bridge** clique — two groups that are
/// separate cliques in year one get fully welded in year two.
pub fn bridge_scenario(
    n_authors: usize,
    n_papers: usize,
    group_a: usize,
    group_b: usize,
    seed: u64,
) -> (Graph, Graph, Vec<VertexId>) {
    let (mut g1, mut g2, mut rng) = base_pair(n_authors, n_papers, seed);
    // Fresh vertices guarantee the two groups are disconnected in year one.
    let base = g1.num_vertices();
    let total = group_a + group_b;
    g1.add_vertices(total);
    g2.add_vertices(total);
    let a: Vec<VertexId> = (base..base + group_a).map(VertexId::from).collect();
    let b: Vec<VertexId> = (base + group_a..base + total).map(VertexId::from).collect();
    plant_clique(&mut g1, &a);
    plant_clique(&mut g1, &b);
    // Keep each group intact in year two and weld them into one clique.
    let members: Vec<VertexId> = a.iter().chain(&b).copied().collect();
    plant_clique(&mut g2, &members);
    let _ = &mut rng;
    (g1, g2, members)
}

/// Figure 11 scenario: a planted **New Join** clique — `veterans` authors
/// who collaborated in year one are joined by `newcomers` brand-new
/// authors, all forming one clique in year two.
pub fn new_join_scenario(
    n_authors: usize,
    n_papers: usize,
    veterans: usize,
    newcomers: usize,
    seed: u64,
) -> (Graph, Graph, Vec<VertexId>) {
    let (mut g1, mut g2, mut rng) = base_pair(n_authors, n_papers, seed);
    // Veteran team: fresh ids planted as a clique in year one.
    let base = g1.num_vertices();
    g1.add_vertices(veterans);
    let vets: Vec<VertexId> = (base..base + veterans).map(VertexId::from).collect();
    plant_clique(&mut g1, &vets);
    // Newcomers exist only in year two (g2 also needs the veteran ids).
    let nbase = base + veterans;
    g2.add_vertices(veterans + newcomers);
    let news: Vec<VertexId> = (nbase..nbase + newcomers).map(VertexId::from).collect();
    let members: Vec<VertexId> = vets.iter().chain(&news).copied().collect();
    plant_clique(&mut g2, &members);
    let _ = &mut rng;
    (g1, g2, members)
}

/// Common base: a churned snapshot pair with aligned vertex counts.
fn base_pair(n_authors: usize, n_papers: usize, seed: u64) -> (Graph, Graph, SmallRng) {
    let (mut g1, mut g2) = snapshot_pair(n_authors, n_papers, 0.5, seed);
    let n = g1.num_vertices().max(g2.num_vertices());
    g1.add_vertices(n - g1.num_vertices());
    g2.add_vertices(n - g2.num_vertices());
    (
        g1,
        g2,
        SmallRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03),
    )
}

/// Vertices active in `g` that are pairwise non-adjacent there.
fn pick_scattered_veterans(g: &Graph, size: usize, rng: &mut SmallRng) -> Vec<VertexId> {
    let active: Vec<VertexId> = g.vertex_ids().filter(|&v| g.degree(v) > 0).collect();
    assert!(active.len() >= size, "not enough active authors");
    let mut members: Vec<VertexId> = Vec::with_capacity(size);
    let mut guard = 0;
    while members.len() < size && guard < 10_000 {
        guard += 1;
        let v = active[rng.gen_range(0..active.len())];
        if !members.contains(&v) && members.iter().all(|&m| !g.has_edge(m, v)) {
            members.push(v);
        }
    }
    assert_eq!(members.len(), size, "could not scatter veterans");
    members
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn snapshot_is_a_union_of_cliques() {
        let g = collaboration_snapshot(500, 300, 5);
        assert!(g.num_edges() > 300);
        // Co-authorship graphs triangulate heavily.
        assert!(tkc_graph::triangles::triangle_count(&g) > 100);
        g.check_invariants().unwrap();
    }

    #[test]
    fn prolific_skew_exists() {
        let g = collaboration_snapshot(1000, 600, 11);
        let low: usize = (0..100).map(|v| g.degree(VertexId(v))).sum();
        let high: usize = (900..1000).map(|v| g.degree(VertexId(v))).sum();
        assert!(low > high * 2, "low {low} high {high}");
    }

    #[test]
    fn pair_shares_carried_teams() {
        let (g1, g2) = snapshot_pair(400, 200, 0.5, 3);
        let shared = g1.edges().filter(|&(_, u, v)| g2.has_edge(u, v)).count();
        assert!(shared > 0, "no carried edges");
        assert!(g1.num_vertices() <= g2.num_vertices());
    }

    #[test]
    fn new_form_scenario_is_well_formed() {
        let (g1, g2, members) = new_form_scenario(400, 250, 6, 9);
        assert_eq!(members.len(), 6);
        for (i, &u) in members.iter().enumerate() {
            assert!(g1.degree(u) > 0, "member inactive in year one");
            for &v in &members[i + 1..] {
                assert!(!g1.has_edge(u, v), "members adjacent in year one");
                assert!(g2.has_edge(u, v), "clique missing in year two");
            }
        }
    }

    #[test]
    fn bridge_scenario_groups_disconnected_then_welded() {
        let (g1, g2, members) = bridge_scenario(300, 150, 4, 2, 21);
        assert_eq!(members.len(), 6);
        let (a, b) = members.split_at(4);
        for &u in a {
            for &v in b {
                assert!(!g1.has_edge(u, v));
                assert!(g2.has_edge(u, v));
            }
        }
        // Each group is a clique in year one already.
        for grp in [a, b] {
            for (i, &u) in grp.iter().enumerate() {
                for &v in &grp[i + 1..] {
                    assert!(g1.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn new_join_scenario_newcomers_absent_in_year_one() {
        let (g1, g2, members) = new_join_scenario(300, 150, 3, 6, 33);
        assert_eq!(members.len(), 9);
        let (vets, news) = members.split_at(3);
        for &v in news {
            assert!(!g1.contains_vertex(v) || g1.degree(v) == 0);
        }
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                assert!(g2.has_edge(u, v));
            }
        }
        for (i, &u) in vets.iter().enumerate() {
            for &v in vets[i + 1..].iter() {
                assert!(g1.has_edge(u, v), "veteran clique missing in year one");
            }
        }
    }
}
