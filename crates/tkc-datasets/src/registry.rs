//! The Table I dataset registry: for each of the paper's ten graphs, a
//! synthetic stand-in matched in size and structure (see DESIGN.md's
//! substitution table), buildable at any scale.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tkc_graph::{generators, Graph, VertexId};

use crate::collaboration::collaboration_snapshot;
use crate::correlation::top_m_correlation_graph;
use crate::ppi::ppi_like;

/// Identifier of one Table I dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// 60-vertex synthetic example.
    Synthetic,
    /// Stock correlation graph (275 / 1 680).
    Stocks,
    /// Protein–protein interaction network (4 741 / 15 147).
    Ppi,
    /// DBLP co-authorship snapshot (6 445 / 11 848).
    Dblp,
    /// Astrophysics co-authorship (17 903 / 190 972).
    AstroAuthor,
    /// Epinions trust network (75 879 / 405 741).
    Epinions,
    /// Amazon co-purchase network (262 111 / 899 792).
    Amazon,
    /// Wikipedia article links (176 265 / 1 010 204).
    Wiki,
    /// Flickr friendship network (1 715 255 / 15 555 041).
    Flickr,
    /// LiveJournal friendship network (4 887 571 / 32 851 237).
    LiveJournal,
}

/// Static description of one dataset: the paper's reported size plus the
/// default scale our harness builds it at.
#[derive(Debug, Clone, Copy)]
pub struct DatasetInfo {
    /// Which dataset.
    pub id: DatasetId,
    /// Table I name.
    pub name: &'static str,
    /// |V| reported in Table I.
    pub paper_vertices: usize,
    /// |E| reported in Table I.
    pub paper_edges: usize,
    /// Default build scale (1.0 = paper size). The two largest graphs
    /// default below 1.0 so the full harness finishes in-session; pass an
    /// explicit scale to override.
    pub default_scale: f64,
    /// What the stand-in generator reproduces.
    pub description: &'static str,
}

impl DatasetId {
    /// All ten datasets in Table I order.
    pub fn all() -> [DatasetId; 10] {
        use DatasetId::*;
        [
            Synthetic,
            Stocks,
            Ppi,
            Dblp,
            AstroAuthor,
            Epinions,
            Amazon,
            Wiki,
            Flickr,
            LiveJournal,
        ]
    }

    /// Registry entry for this dataset.
    pub fn info(self) -> DatasetInfo {
        use DatasetId::*;
        match self {
            Synthetic => DatasetInfo {
                id: self,
                name: "Synthetic",
                paper_vertices: 60,
                paper_edges: 308,
                default_scale: 1.0,
                description: "six planted communities with cross noise",
            },
            Stocks => DatasetInfo {
                id: self,
                name: "Stocks",
                paper_vertices: 275,
                paper_edges: 1680,
                default_scale: 1.0,
                description: "sector factor model, top-m correlation edges",
            },
            Ppi => DatasetInfo {
                id: self,
                name: "PPI",
                paper_vertices: 4741,
                paper_edges: 15147,
                default_scale: 1.0,
                description: "protein complexes (3-14) + sparse background",
            },
            Dblp => DatasetInfo {
                id: self,
                name: "DBLP",
                paper_vertices: 6445,
                paper_edges: 11848,
                default_scale: 1.0,
                description: "union of 2-6 author paper cliques, prolific skew",
            },
            AstroAuthor => DatasetInfo {
                id: self,
                name: "Astro-Author",
                paper_vertices: 17903,
                paper_edges: 190972,
                default_scale: 1.0,
                description: "Holme-Kim scale-free with heavy triadic closure",
            },
            Epinions => DatasetInfo {
                id: self,
                name: "Epinions",
                paper_vertices: 75879,
                paper_edges: 405741,
                default_scale: 1.0,
                description: "preferential attachment trust graph + noise",
            },
            Amazon => DatasetInfo {
                id: self,
                name: "Amazon",
                paper_vertices: 262111,
                paper_edges: 899792,
                default_scale: 1.0,
                description: "low-degree co-purchase graph with clustering",
            },
            Wiki => DatasetInfo {
                id: self,
                name: "Wiki",
                paper_vertices: 176265,
                paper_edges: 1010204,
                default_scale: 1.0,
                description: "hub-skewed link graph with triadic closure",
            },
            Flickr => DatasetInfo {
                id: self,
                name: "Flickr",
                paper_vertices: 1_715_255,
                paper_edges: 15_555_041,
                default_scale: 0.125,
                description: "dense friendship graph (scaled by default)",
            },
            LiveJournal => DatasetInfo {
                id: self,
                name: "LiveJournal",
                paper_vertices: 4_887_571,
                paper_edges: 32_851_237,
                default_scale: 0.125,
                description: "largest friendship graph (scaled by default)",
            },
        }
    }

    /// Parses a Table I name (case-insensitive).
    pub fn from_name(name: &str) -> Option<DatasetId> {
        DatasetId::all()
            .into_iter()
            .find(|d| d.info().name.eq_ignore_ascii_case(name))
    }
}

/// Builds a dataset at `scale` (1.0 = paper size; clamped to keep at least
/// a small viable graph). Deterministic in `seed`.
pub fn build(id: DatasetId, scale: f64, seed: u64) -> Graph {
    let info = id.info();
    let n = ((info.paper_vertices as f64 * scale) as usize).max(30);
    let m = ((info.paper_edges as f64 * scale) as usize).max(60);
    match id {
        DatasetId::Synthetic => generators::planted_partition(6, n / 6, 0.72, 0.075, seed),
        DatasetId::Stocks => {
            let sectors = (n / 22).max(2);
            top_m_correlation_graph(n, sectors, 0.45, m.min(n * (n - 1) / 2), seed)
        }
        DatasetId::Ppi => ppi_like(n, m, seed).0,
        DatasetId::Dblp => {
            // Papers tuned so the union reaches ~m edges: teams average
            // ~5.3 clique edges each, minus overlap.
            collaboration_snapshot(n, m / 5, seed)
        }
        DatasetId::AstroAuthor => scale_free_clustered(n, m, 0.75, seed),
        DatasetId::Epinions => scale_free_clustered(n, m, 0.25, seed),
        DatasetId::Amazon => scale_free_clustered(n, m, 0.55, seed),
        DatasetId::Wiki => scale_free_clustered(n, m, 0.45, seed),
        DatasetId::Flickr => scale_free_clustered(n, m, 0.6, seed),
        DatasetId::LiveJournal => scale_free_clustered(n, m, 0.5, seed),
    }
}

/// Builds a dataset at its registry default scale.
pub fn build_default(id: DatasetId, seed: u64) -> Graph {
    build(id, id.info().default_scale, seed)
}

/// Holme–Kim at the attachment count matching `target_edges`, topped up
/// with random edges to hit the target exactly (±0 on success).
fn scale_free_clustered(n: usize, target_edges: usize, p_triad: f64, seed: u64) -> Graph {
    let m_attach = (target_edges / n).max(1).min(n - 1);
    let mut g = generators::holme_kim(n, m_attach, p_triad, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5bd1e995);
    let mut guard = 0usize;
    let cap = 20 * target_edges.max(1);
    while g.num_edges() < target_edges && guard < cap {
        guard += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            // Bias the top-up toward triangle closure: half the time pick a
            // neighbor-of-neighbor, keeping clustering realistic.
            let target = if rng.gen_bool(0.5) && g.degree(VertexId(u)) > 0 {
                let d = g.degree(VertexId(u));
                let (w, _) = g
                    .neighbors(VertexId(u))
                    .nth(rng.gen_range(0..d))
                    .expect("index drawn below degree");
                let dw = g.degree(w);
                if dw > 0 {
                    let (x, _) = g
                        .neighbors(w)
                        .nth(rng.gen_range(0..dw))
                        .expect("index drawn below degree");
                    x
                } else {
                    VertexId(v)
                }
            } else {
                VertexId(v)
            };
            if target != VertexId(u) {
                let _ = g.try_add_edge(VertexId(u), target);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn registry_covers_table_1() {
        let all = DatasetId::all();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].info().name, "Synthetic");
        assert_eq!(all[9].info().paper_edges, 32_851_237);
        assert_eq!(DatasetId::from_name("ppi"), Some(DatasetId::Ppi));
        assert_eq!(
            DatasetId::from_name("astro-author"),
            Some(DatasetId::AstroAuthor)
        );
        assert_eq!(DatasetId::from_name("nope"), None);
    }

    #[test]
    fn small_datasets_match_paper_sizes_roughly() {
        for id in [DatasetId::Synthetic, DatasetId::Stocks, DatasetId::Dblp] {
            let info = id.info();
            let g = build(id, 1.0, 1);
            let dv = g.num_vertices() as f64 / info.paper_vertices as f64;
            let de = g.num_edges() as f64 / info.paper_edges as f64;
            assert!(
                (0.8..=1.25).contains(&dv),
                "{}: vertices off {dv}",
                info.name
            );
            assert!((0.7..=1.4).contains(&de), "{}: edges off {de}", info.name);
        }
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let full = build(DatasetId::Ppi, 1.0, 2);
        let half = build(DatasetId::Ppi, 0.5, 2);
        assert!(half.num_vertices() * 2 <= full.num_vertices() + 100);
        assert!(half.num_edges() < full.num_edges());
    }

    #[test]
    fn builds_are_deterministic() {
        let a: Vec<_> = build(DatasetId::Stocks, 0.5, 7).edges().collect();
        let b: Vec<_> = build(DatasetId::Stocks, 0.5, 7).edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_datasets_have_triangles() {
        let g = build(DatasetId::AstroAuthor, 0.1, 3);
        let tri = tkc_graph::triangles::triangle_count(&g);
        assert!(tri > g.num_edges() as u64 / 10, "too few triangles: {tri}");
    }

    #[test]
    fn default_scale_caps_the_giants() {
        assert!(DatasetId::Flickr.info().default_scale < 1.0);
        assert!(DatasetId::LiveJournal.info().default_scale < 1.0);
        assert_eq!(DatasetId::Ppi.info().default_scale, 1.0);
    }
}
