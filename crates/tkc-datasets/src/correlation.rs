//! Correlation threshold graphs — the stand-in for the paper's *Stocks*
//! dataset (275 stocks, 1680 edges).
//!
//! Stocks in the same sector co-move: we simulate a one-factor-per-sector
//! returns model, compute all pairwise Pearson correlations and keep the
//! top `m` pairs as edges. Thresholding by rank (rather than by value)
//! pins the edge count to the paper's exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tkc_graph::Graph;

/// Builds a correlation graph of `n` series in `sectors` groups, keeping
/// the `m` most-correlated pairs as edges.
///
/// `noise` controls idiosyncratic variance: 0 makes sectors perfect
/// cliques, large values dissolve them.
pub fn top_m_correlation_graph(n: usize, sectors: usize, noise: f64, m: usize, seed: u64) -> Graph {
    assert!(sectors >= 1 && n >= sectors);
    assert!(m <= n * (n - 1) / 2, "more edges than pairs");
    let periods = 48;
    let mut rng = SmallRng::seed_from_u64(seed);

    // Sector factor paths.
    let factors: Vec<Vec<f64>> = (0..sectors)
        .map(|_| (0..periods).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();

    // Per-series returns: sector factor + idiosyncratic noise.
    let series: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let s = i % sectors;
            (0..periods)
                .map(|t| factors[s][t] + noise * rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect();

    // Standardize once, then correlation is a dot product.
    let zscored: Vec<Vec<f64>> = series
        .iter()
        .map(|xs| {
            let mean = xs.iter().sum::<f64>() / periods as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / periods as f64;
            let sd = var.sqrt().max(1e-12);
            xs.iter().map(|x| (x - mean) / sd).collect()
        })
        .collect();

    let mut scored: Vec<(f64, u32, u32)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let corr: f64 = zscored[i]
                .iter()
                .zip(&zscored[j])
                .map(|(a, b)| a * b)
                .sum::<f64>()
                / periods as f64;
            scored.push((corr, i as u32, j as u32));
        }
    }
    scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
    Graph::from_edges(n, scored.into_iter().take(m).map(|(_, i, j)| (i, j)))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn exact_edge_count_and_size() {
        let g = top_m_correlation_graph(60, 6, 0.4, 200, 7);
        assert_eq!(g.num_vertices(), 60);
        assert_eq!(g.num_edges(), 200);
        g.check_invariants().unwrap();
    }

    #[test]
    fn sector_structure_dominates_edges() {
        let g = top_m_correlation_graph(60, 6, 0.3, 200, 7);
        let mut within = 0usize;
        for (_, u, v) in g.edges() {
            if u.index() % 6 == v.index() % 6 {
                within += 1;
            }
        }
        assert!(
            within * 10 >= g.num_edges() * 8,
            "only {within}/200 edges within sectors"
        );
    }

    #[test]
    fn sector_cliques_produce_triangles() {
        let g = top_m_correlation_graph(60, 6, 0.2, 250, 3);
        assert!(tkc_graph::triangles::triangle_count(&g) > 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = top_m_correlation_graph(40, 4, 0.5, 80, 9).edges().collect();
        let b: Vec<_> = top_m_correlation_graph(40, 4, 0.5, 80, 9).edges().collect();
        assert_eq!(a, b);
    }
}
