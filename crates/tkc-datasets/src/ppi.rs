//! Protein–protein interaction stand-ins: complex-structured graphs with
//! labels (for the Figure 12 inter-complex Bridge study) and the Figure 7
//! case-study instance with three planted near-cliques.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tkc_graph::generators::plant_clique;
use tkc_graph::{Graph, VertexId};

/// A PPI-like graph: `n` proteins grouped into complexes of size 3–14
/// (small sizes dominate), dense within-complex wiring, sparse background
/// interactions up to ~`target_edges`. Returns the graph and each
/// protein's complex label.
pub fn ppi_like(n: usize, target_edges: usize, seed: u64) -> (Graph, Vec<u32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut labels = vec![0u32; n];
    let mut g = Graph::with_capacity(n, target_edges);

    // Partition into complexes with a size skew (many trios, few large).
    let mut start = 0usize;
    let mut complex = 0u32;
    while start < n {
        let size = match rng.gen_range(0..10u32) {
            0..=4 => rng.gen_range(3..6usize),
            5..=7 => rng.gen_range(6..9usize),
            _ => rng.gen_range(9..15usize),
        }
        .min(n - start);
        for l in labels.iter_mut().skip(start).take(size) {
            *l = complex;
        }
        // Within-complex wiring: dense but imperfect (missing edges are
        // what make Figure 7's "9-vertex-looking 10-clique" possible).
        for i in start..start + size {
            for j in (i + 1)..start + size {
                if rng.gen_bool(0.75) {
                    let _ = g.try_add_edge(VertexId::from(i), VertexId::from(j));
                }
            }
        }
        start += size;
        complex += 1;
    }

    // Background interactions: random cross-complex edges up to target.
    let mut guard = 0;
    while g.num_edges() < target_edges && guard < 20 * target_edges {
        guard += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            let _ = g.try_add_edge(VertexId(u), VertexId(v));
        }
    }
    (g, labels)
}

/// The Figure 7 case study instance: a PPI-like background with three
/// planted structures —
///
/// 1. an 8-vertex clique (the "Clique 1 / DN-Graph" group),
/// 2. an exact 10-vertex clique (Clique 2),
/// 3. a 10-vertex clique **minus one edge** (Clique 3, which the plot
///    shows as 9-vertex because `κ+2 = 9` for the two edge-deprived
///    vertices' weakest edges).
///
/// Returns the graph and the three member lists.
pub fn ppi_case_study(seed: u64) -> (Graph, [Vec<VertexId>; 3]) {
    let (mut g, _) = ppi_like(600, 2000, seed);
    let base = g.num_vertices();
    g.add_vertices(28);
    let c1: Vec<VertexId> = (base..base + 8).map(VertexId::from).collect();
    let c2: Vec<VertexId> = (base + 8..base + 18).map(VertexId::from).collect();
    let c3: Vec<VertexId> = (base + 18..base + 28).map(VertexId::from).collect();
    plant_clique(&mut g, &c1);
    plant_clique(&mut g, &c2);
    plant_clique(&mut g, &c3);
    // Clique 3 misses one edge (APC4–CDC16 in the paper).
    g.remove_edge_between(c3[0], c3[1]).expect("planted edge");
    // Anchor the cliques to the background so they are not floating.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
    for members in [&c1, &c2, &c3] {
        for _ in 0..3 {
            let inside = members[rng.gen_range(0..members.len())];
            let outside = VertexId(rng.gen_range(0..base as u32));
            let _ = g.try_add_edge(inside, outside);
        }
    }
    (g, [c1, c2, c3])
}

/// The Figure 12 study instance: two "complexes" of interest welded by a
/// bridge clique, embedded in a PPI-like background with labels. Returns
/// `(graph, labels, bridge_members)` where the first `hub_count` members
/// belong to complex A and the rest to complex B.
pub fn ppi_bridge_study(seed: u64) -> (Graph, Vec<u32>, Vec<VertexId>) {
    let (mut g, mut labels) = ppi_like(500, 1600, seed);
    let base = g.num_vertices();
    let next_label = labels.iter().copied().max().unwrap_or(0) + 1;
    // Complex A: 6 proteins ("20S proteasome"-like), complex B: 9
    // ("19/22S regulator"-like).
    g.add_vertices(15);
    labels.extend(std::iter::repeat(next_label).take(6));
    labels.extend(std::iter::repeat(next_label + 1).take(9));
    let a: Vec<VertexId> = (base..base + 6).map(VertexId::from).collect();
    let b: Vec<VertexId> = (base + 6..base + 15).map(VertexId::from).collect();
    plant_clique(&mut g, &a);
    plant_clique(&mut g, &b);
    // The bridge: one hub of A (PRE1-like) fully wired into B.
    let hub = a[0];
    for &v in &b {
        let _ = g.try_add_edge(hub, v);
    }
    let mut members = vec![hub];
    members.extend(b.iter().copied());
    (g, labels, members)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn ppi_like_sizes_and_labels() {
        let (g, labels) = ppi_like(800, 2600, 4);
        assert_eq!(g.num_vertices(), 800);
        assert!(g.num_edges() >= 2500, "edges {}", g.num_edges());
        assert_eq!(labels.len(), 800);
        // Labels are contiguous complexes of size >= 1.
        let max = *labels.iter().max().unwrap();
        assert!(max > 50, "too few complexes: {max}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn complexes_are_denser_than_background() {
        let (g, labels) = ppi_like(600, 2000, 9);
        let mut within = 0usize;
        let mut across = 0usize;
        for (_, u, v) in g.edges() {
            if labels[u.index()] == labels[v.index()] {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > across, "within {within} across {across}");
    }

    #[test]
    fn case_study_plants_the_three_cliques() {
        let (g, [c1, c2, c3]) = ppi_case_study(7);
        for (i, &u) in c1.iter().enumerate() {
            for &v in &c1[i + 1..] {
                assert!(g.has_edge(u, v));
            }
        }
        for (i, &u) in c2.iter().enumerate() {
            for &v in &c2[i + 1..] {
                assert!(g.has_edge(u, v));
            }
        }
        // c3 misses exactly its first pair.
        assert!(!g.has_edge(c3[0], c3[1]));
        let mut missing = 0;
        for (i, &u) in c3.iter().enumerate() {
            for &v in &c3[i + 1..] {
                if !g.has_edge(u, v) {
                    missing += 1;
                }
            }
        }
        assert_eq!(missing, 1);
    }

    #[test]
    fn bridge_study_wires_hub_across() {
        let (g, labels, members) = ppi_bridge_study(5);
        let hub = members[0];
        for &v in &members[1..] {
            assert!(g.has_edge(hub, v));
            assert_ne!(labels[hub.index()], labels[v.index()]);
        }
    }
}
