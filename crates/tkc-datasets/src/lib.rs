//! # tkc-datasets — synthetic stand-ins for the paper's data (Table I)
//!
//! The original study evaluates on ten real graphs (Stocks, PPI, DBLP,
//! Astro, Epinions, Amazon, Wiki, Flickr, LiveJournal, plus a synthetic
//! example). Those files are not redistributable here, so this crate
//! generates structurally matched substitutes — same |V|/|E|, same degree
//! skew and clustering regime, plus *planted* structures for the case
//! studies so the qualitative findings (clique peaks, growth events,
//! bridge cliques) are reproducible. Every build is deterministic in its
//! seed; see DESIGN.md's substitution table.
//!
//! ```
//! use tkc_datasets::registry::{build_default, DatasetId};
//!
//! let g = build_default(DatasetId::Stocks, 42);
//! assert_eq!(g.num_vertices(), 275);
//! assert_eq!(g.num_edges(), 1680);
//! ```

// Dataset generators: indices derive from the loop bounds that sized the
// vectors; cold path feeding benches and figures. See DESIGN.md §11.
#![allow(clippy::indexing_slicing, clippy::expect_used)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collaboration;
pub mod correlation;
pub mod ppi;
pub mod registry;
pub mod scenarios;
pub mod streamed;
pub mod temporal;

pub use registry::{build, build_default, DatasetId, DatasetInfo};
pub use streamed::{build_graph as build_streamed, write_snap, StreamedConfig};
