//! Block-streamed synthetic graphs bigger than the in-memory harness.
//!
//! The Table I stand-ins in [`crate::registry`] materialize a full
//! [`tkc_graph::Graph`]; that caps the sizes the bench harness can
//! exercise. This module generates edges **without holding the graph**:
//! vertices are processed in fixed-size blocks, each block's randomness
//! is derived independently from `(seed, block)`, and edges are pushed
//! through a callback (or straight to a SNAP-style `u v` writer). Memory
//! is O(block), so the same generator that feeds a unit test at 2k edges
//! feeds `tkc store pack` and the out-of-core peel at millions.
//!
//! The model is a clustered small-world with planted cores, chosen so
//! the support distribution is stratified (interesting for the
//! stratum-at-a-time peel) rather than flat:
//!
//! * a **ring lattice** — every vertex links its block's ring width of
//!   successors (mod n), giving baseline triangles and a low-κ floor.
//!   The width *varies per block* (`ring + block % ring_spread`): a
//!   uniform lattice collapses into one giant κ class, which would force
//!   a stratum-at-a-time peel to hold nearly the whole graph resident at
//!   the final level; per-block widths stratify κ so no single class
//!   dominates;
//! * **long-range chords** — per vertex, `chords` pseudo-random links
//!   into *other* blocks (degree skew, small diameter, few triangles);
//! * **planted cliques** — every `clique_every`-th block plants a
//!   `clique_size`-clique on vertices strided across the block, pinning
//!   a known high-κ core (`κ = clique_size − 2`) into the stratum tail.
//!
//! Uniqueness is by construction, not by a global hash set: ring pairs
//! have ring-distance ≤ the maximum ring width, chords require
//! ring-distance beyond it, a different block, and `w > v` (so each
//! unordered pair has a unique generating endpoint), and clique pairs
//! are intra-block with stride beyond it. Every run with the same
//! config is bit-identical.

use std::io::{self, BufWriter, Write};

use tkc_graph::{Graph, VertexId};

/// Parameters of one streamed graph. Determinism: every edge the stream
/// emits is a pure function of `(config, seed)`.
#[derive(Debug, Clone, Copy)]
pub struct StreamedConfig {
    /// Vertex count. Must exceed twice the maximum ring width so ring
    /// pairs are unique.
    pub vertices: u32,
    /// Minimum ring-lattice half-width: each vertex links its block's
    /// ring width of successors.
    pub ring: u32,
    /// Number of distinct per-block ring widths (`0`/`1` = uniform):
    /// block `b` uses width `ring + b % ring_spread`, stratifying κ
    /// across blocks so no single peel level holds the whole lattice.
    pub ring_spread: u32,
    /// Long-range chords attempted per vertex (some are rejected by the
    /// uniqueness rules; rejected draws are skipped, not redrawn forever).
    pub chords: u32,
    /// Vertices per generation block (the memory unit).
    pub block: u32,
    /// Plant a clique in every this-many-th block (`0` = never).
    pub clique_every: u32,
    /// Members per planted clique (clamped to the block's vertex count).
    pub clique_size: u32,
    /// Seed; blocks derive independent streams from `(seed, block)`.
    pub seed: u64,
}

impl StreamedConfig {
    /// A small smoke-test scale (~360 vertices, ~1.5k edges).
    pub fn small(seed: u64) -> StreamedConfig {
        StreamedConfig {
            vertices: 360,
            ring: 2,
            ring_spread: 3,
            chords: 2,
            block: 64,
            clique_every: 2,
            clique_size: 12,
            seed,
        }
    }

    /// The out-of-core bench scale: ~150k vertices / ~1.5M edges —
    /// ≥10× the 120k-edge graphs the in-memory bench harness tops out
    /// at, with ring widths 4..=15 fanned across blocks and planted
    /// κ=22 cores in the stratum tail.
    pub fn bench(seed: u64) -> StreamedConfig {
        StreamedConfig {
            vertices: 150_000,
            ring: 4,
            ring_spread: 12,
            chords: 2,
            block: 1024,
            clique_every: 8,
            clique_size: 24,
            seed,
        }
    }

    /// Number of generation blocks.
    pub fn num_blocks(&self) -> u32 {
        if self.block == 0 {
            return 0;
        }
        self.vertices.div_ceil(self.block)
    }

    /// Ring width of block `b`.
    fn block_ring(&self, b: u32) -> u32 {
        if self.ring_spread > 1 {
            self.ring + b % self.ring_spread
        } else {
            self.ring
        }
    }

    /// The largest ring width any block uses — the radius every
    /// uniqueness rule (chords, clique strides) must clear.
    pub fn max_ring(&self) -> u32 {
        self.ring + self.ring_spread.saturating_sub(1)
    }
}

/// splitmix64 — the block streams' only randomness primitive, so output
/// is identical on every platform and independent of any RNG crate.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ring distance between two vertices on the n-cycle.
fn ring_dist(n: u32, a: u32, b: u32) -> u32 {
    let d = a.abs_diff(b);
    d.min(n - d)
}

/// Streams every edge of the configured graph, in deterministic order
/// (block-major: ring, then chords, then the block's planted clique),
/// each unordered pair exactly once. Returns the number of edges
/// emitted, or the first error `emit` returned.
pub fn stream_edges<E>(
    cfg: &StreamedConfig,
    mut emit: impl FnMut(u32, u32) -> Result<(), E>,
) -> Result<u64, E> {
    let n = cfg.vertices;
    if n == 0 || cfg.block == 0 {
        return Ok(0);
    }
    debug_assert!(n > 2 * cfg.max_ring(), "ring pairs must be unique");
    let max_ring = cfg.max_ring();
    let mut edges = 0u64;
    let mut chord_buf: Vec<u32> = Vec::with_capacity(cfg.chords as usize);
    for b in 0..cfg.num_blocks() {
        let start = b * cfg.block;
        let end = (start + cfg.block).min(n);
        // Independent per-block stream: a consumer that wants blocks
        // 17..20 gets the same bytes as one streaming everything.
        let mut state = splitmix64(cfg.seed ^ (u64::from(b) << 32) ^ 0xA076_1D64_78BD_642F);
        let mut next = move || {
            state = splitmix64(state);
            state
        };
        let ring = cfg.block_ring(b);
        for v in start..end {
            for j in 1..=ring {
                let w = (v + j) % n;
                if w != v {
                    emit(v, w)?;
                    edges += 1;
                }
            }
            chord_buf.clear();
            for _ in 0..cfg.chords {
                // Bounded rejection: a draw violating the uniqueness
                // rules is dropped, keeping the per-vertex work O(1).
                // The exclusion radius is the *maximum* ring width, so a
                // chord can never coincide with any block's ring edge.
                let w = (next() % u64::from(n)) as u32;
                let other_block = w / cfg.block != b;
                if w > v && other_block && ring_dist(n, v, w) > max_ring && !chord_buf.contains(&w)
                {
                    chord_buf.push(w);
                    emit(v, w)?;
                    edges += 1;
                }
            }
        }
        // Planted clique: members strided across the block so every pair
        // clears the ring-distance rule (stride exceeds the maximum ring
        // width at all configured scales; violating pairs are skipped
        // defensively).
        if cfg.clique_every != 0 && b % cfg.clique_every == 0 && cfg.clique_size >= 2 {
            let span = end - start;
            let q = cfg.clique_size.min(span);
            let stride = (span / q).max(1);
            for i in 0..q {
                for j in (i + 1)..q {
                    let (a, c) = (start + i * stride, start + j * stride);
                    if ring_dist(n, a, c) > max_ring {
                        emit(a, c)?;
                        edges += 1;
                    }
                }
            }
        }
    }
    Ok(edges)
}

/// Streams the graph as SNAP-style text — one `u v` line per edge, a
/// `#`-comment header carrying the config for provenance — and returns
/// the edge count. This is the file format `tkc_graph::io` and every
/// external SNAP consumer read.
pub fn write_snap<W: Write>(cfg: &StreamedConfig, writer: W) -> io::Result<u64> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# tkc-datasets streamed: n {} ring {}+{} chords {} block {} clique {}/{} seed {}",
        cfg.vertices,
        cfg.ring,
        cfg.ring_spread,
        cfg.chords,
        cfg.block,
        cfg.clique_size,
        cfg.clique_every,
        cfg.seed
    )?;
    let edges = stream_edges(cfg, |u, v| writeln!(w, "{u} {v}"))?;
    w.flush()?;
    Ok(edges)
}

/// Materializes the streamed graph in memory — the convenience path for
/// tests, differential checks, and `tkc store pack` (packing needs the
/// adjacency; the *peel* over the packed file is what stays out of
/// core). Vertex ids are dense, edge ids follow stream order.
pub fn build_graph(cfg: &StreamedConfig) -> Graph {
    let mut g = Graph::with_capacity(cfg.vertices as usize, 0);
    let built = stream_edges(cfg, |u, v| g.add_edge(VertexId(u), VertexId(v)).map(|_| ()));
    match built {
        Ok(_) => g,
        // Unreachable by the uniqueness-by-construction argument above;
        // a panic here means the generator's invariants regressed.
        Err(e) => unreachable!("streamed generator emitted an invalid edge: {e}"),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;
    use tkc_core::prelude::*;

    #[test]
    fn deterministic_and_duplicate_free() {
        let cfg = StreamedConfig::small(11);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let ea = stream_edges(&cfg, |u, v| -> Result<(), ()> {
            a.push((u, v));
            Ok(())
        })
        .unwrap();
        stream_edges(&cfg, |u, v| -> Result<(), ()> {
            b.push((u, v));
            Ok(())
        })
        .unwrap();
        assert_eq!(a, b, "same config must stream identical bytes");
        let mut canon: Vec<(u32, u32)> = a.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        canon.sort_unstable();
        let before = canon.len();
        canon.dedup();
        assert_eq!(canon.len(), before, "duplicate unordered pair emitted");
        assert_eq!(ea as usize, before);
        // And the graph builder (which would reject duplicates) agrees.
        assert_eq!(build_graph(&cfg).num_edges(), before);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = build_graph(&StreamedConfig::small(1));
        let g2 = build_graph(&StreamedConfig::small(2));
        let pairs = |g: &tkc_graph::Graph| {
            let mut v: Vec<_> = g
                .edge_ids()
                .map(|e| {
                    let (a, b) = g.endpoints(e);
                    (a.0.min(b.0), a.0.max(b.0))
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_ne!(pairs(&g1), pairs(&g2));
    }

    #[test]
    fn planted_cliques_pin_the_kappa_tail() {
        let cfg = StreamedConfig::small(5);
        let g = build_graph(&cfg);
        let d = triangle_kcore_decomposition(&g);
        // A q-clique forces κ ≥ q − 2 somewhere; the ring floor alone
        // cannot reach it (lattice κ tops out near the maximum ring
        // width − 1).
        assert!(
            d.max_kappa() >= cfg.clique_size - 2,
            "max κ {} below planted clique level {}",
            d.max_kappa(),
            cfg.clique_size - 2
        );
    }

    #[test]
    fn per_block_ring_widths_stratify_kappa() {
        // The out-of-core peel's resident set is bounded by the largest
        // single κ class; the spread exists to keep that class a small
        // fraction of the graph. Uniform lattices (spread ≤ 1) collapse
        // into essentially one class — guard the spread's effect.
        let cfg = StreamedConfig::small(7);
        let d = triangle_kcore_decomposition(&build_graph(&cfg));
        let mut levels: Vec<u32> = d.kappa_slice().to_vec();
        levels.sort_unstable();
        levels.dedup();
        assert!(
            levels.len() as u32 > cfg.ring_spread,
            "expected more than {} distinct κ levels, got {:?}",
            cfg.ring_spread,
            levels
        );
    }

    #[test]
    fn snap_output_parses_back() {
        let cfg = StreamedConfig::small(3);
        let mut buf = Vec::new();
        let edges = write_snap(&cfg, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# tkc-datasets streamed"));
        let lines = text.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(lines as u64, edges);
        let g = tkc_graph::io::read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges() as u64, edges);
    }

    #[test]
    fn bench_scale_is_ten_x_and_bounded_memory() {
        // Counting pass only — the whole point is that no graph is held.
        let cfg = StreamedConfig::bench(42);
        let edges = stream_edges(&cfg, |_, _| -> Result<(), ()> { Ok(()) }).unwrap();
        assert!(
            edges >= 1_200_000,
            "bench scale must be ≥10× the 120k-edge bench graphs, got {edges}"
        );
        assert_eq!(cfg.vertices, 150_000);
    }
}
