//! Ready-made experiment scenarios beyond single snapshots: the Wiki
//! dual-view pair (Figure 8) and random edge-churn scripts for Table III.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tkc_graph::generators::plant_clique;
use tkc_graph::{Graph, VertexId};

/// The Figure 8 scenario: a Wiki-like snapshot plus the edge additions of
/// the next snapshot, containing three planted evolution events —
///
/// 1. a 10-vertex clique grows to 11 by absorbing a page that sat in a
///    5-vertex clique (the "Astrology" event),
/// 2. two 6-vertex cliques merge into one 12-vertex clique,
/// 3. two 5-vertex cliques expand onto shared new vertices.
///
/// Returns `(snapshot1, additions, event_vertex_sets)`.
pub fn wiki_dual_view_scenario(
    scale: f64,
    seed: u64,
) -> (Graph, Vec<(VertexId, VertexId)>, [Vec<VertexId>; 3]) {
    let n = ((4000.0 * scale) as usize).max(200);
    let mut g = crate::registry::build(crate::registry::DatasetId::Wiki, scale * 0.02, seed);
    if g.num_vertices() < n {
        g.add_vertices(n - g.num_vertices());
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x2545f491);
    let base = g.num_vertices();
    // Event 1 cliques: a 10-clique and a separate 5-clique sharing no
    // vertices; the star of the 5-clique later joins the 10-clique.
    g.add_vertices(10 + 5 + 6 + 6 + 5 + 5 + 2);
    let ten: Vec<VertexId> = (base..base + 10).map(VertexId::from).collect();
    let five: Vec<VertexId> = (base + 10..base + 15).map(VertexId::from).collect();
    let m6a: Vec<VertexId> = (base + 15..base + 21).map(VertexId::from).collect();
    let m6b: Vec<VertexId> = (base + 21..base + 27).map(VertexId::from).collect();
    let e5a: Vec<VertexId> = (base + 27..base + 32).map(VertexId::from).collect();
    let e5b: Vec<VertexId> = (base + 32..base + 37).map(VertexId::from).collect();
    let shared: Vec<VertexId> = (base + 37..base + 39).map(VertexId::from).collect();
    for c in [&ten, &five, &m6a, &m6b, &e5a, &e5b] {
        plant_clique(&mut g, c);
    }

    let mut additions: Vec<(VertexId, VertexId)> = Vec::new();
    // Event 1: the "Astrology" page (five[0]) links into the whole
    // 10-clique.
    let astrology = five[0];
    for &v in &ten {
        additions.push((astrology, v));
    }
    let mut ev1 = ten.clone();
    ev1.push(astrology);

    // Event 2: the two 6-cliques merge completely.
    for &u in &m6a {
        for &v in &m6b {
            additions.push((u, v));
        }
    }
    let ev2: Vec<VertexId> = m6a.iter().chain(&m6b).copied().collect();

    // Event 3: both 5-cliques expand onto two shared new pages.
    for &s in &shared {
        for &v in e5a.iter().chain(&e5b) {
            additions.push((s, v));
        }
    }
    additions.push((shared[0], shared[1]));
    let ev3: Vec<VertexId> = e5a.iter().chain(&e5b).chain(&shared).copied().collect();

    // Background churn: a sprinkle of random new links.
    for _ in 0..(g.num_edges() / 100).max(10) {
        let u = VertexId(rng.gen_range(0..g.num_vertices() as u32));
        let v = VertexId(rng.gen_range(0..g.num_vertices() as u32));
        if u != v && !g.has_edge(u, v) {
            additions.push((u, v));
        }
    }
    additions.dedup();
    (g, additions, [ev1, ev2, ev3])
}

/// A list of vertex pairs (edge endpoints) used by churn scripts.
pub type EdgePairs = Vec<(VertexId, VertexId)>;

/// A Table III churn script: toggles `fraction` of the graph's edges —
/// half deletions of existing edges, half insertions of new ones.
/// Returns `(deletions, insertions)`.
pub fn churn_script(g: &Graph, fraction: f64, seed: u64) -> (EdgePairs, EdgePairs) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let total = ((g.num_edges() as f64 * fraction) as usize).max(2);
    let mut existing: Vec<(VertexId, VertexId)> = g.edges().map(|(_, u, v)| (u, v)).collect();
    existing.shuffle(&mut rng);
    let deletions: Vec<_> = existing.into_iter().take(total / 2).collect();

    let n = g.num_vertices() as u32;
    let mut insertions = Vec::with_capacity(total - total / 2);
    let mut guard = 0;
    while insertions.len() < total - total / 2 && guard < 100 * total {
        guard += 1;
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        if u != v
            && !g.has_edge(u, v)
            && !insertions.contains(&(u, v))
            && !insertions.contains(&(v, u))
        {
            insertions.push((u, v));
        }
    }
    (deletions, insertions)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::generators;

    #[test]
    fn wiki_scenario_shapes() {
        let (g, adds, [ev1, ev2, ev3]) = wiki_dual_view_scenario(0.1, 3);
        assert!(g.num_edges() > 50);
        assert!(adds.len() > 40);
        assert_eq!(ev1.len(), 11);
        assert_eq!(ev2.len(), 12);
        assert_eq!(ev3.len(), 12);
        // Planted additions are all fresh edges.
        for &(u, v) in &adds {
            assert!(u != v);
            assert!(g.contains_vertex(u) && g.contains_vertex(v));
        }
    }

    #[test]
    fn churn_script_respects_fraction() {
        let g = generators::gnp(100, 0.1, 5);
        let (dels, ins) = churn_script(&g, 0.01, 7);
        let total = dels.len() + ins.len();
        let want = ((g.num_edges() as f64) * 0.01) as usize;
        assert!(
            total >= want.max(2) - 1 && total <= want + 2,
            "total {total} want {want}"
        );
        for (u, v) in dels {
            assert!(g.has_edge(u, v));
        }
        for (u, v) in ins {
            assert!(!g.has_edge(u, v));
        }
    }
}
