//! Read-only CSR snapshot with degree-oriented, exactly-once triangle
//! enumeration — the fast support kernel behind Algorithm 1.
//!
//! [`crate::triangles::edge_supports`] walks the mutable [`Graph`]'s
//! per-vertex `Vec<(VertexId, EdgeId)>` adjacency: pointer-chasing through
//! `m` little heap allocations, merging *full* neighbor lists per edge
//! (`O(Σ_e min(deg u, deg v))` probes), and (in the seed's parallel path)
//! touching every triangle three times. [`CsrGraph::freeze`] snapshots the
//! graph into three flat arrays — `offsets` / `nbr` / `eid` — holding only
//! the **degree-oriented** half of each edge:
//!
//! * vertices are ranked by `(degree, id)` ascending and every edge is
//!   directed from its lower-ranked endpoint to its higher-ranked one, so
//!   hubs keep tiny out-lists (the classic Chiba–Nishizeki / compact-
//!   forward orientation);
//! * out-lists are sorted by destination rank, so the common-out-neighbor
//!   scan for a directed edge `u→v` is a linear merge of two short sorted
//!   runs — no hash probes, no binary search;
//! * each triangle `{u, v, w}` (ranks `u < v < w`) is discovered exactly
//!   once, at its lowest-ranked directed edge `u→v`, and credits all three
//!   original [`EdgeId`]s via the `eid` side array.
//!
//! The snapshot also carries a per-vertex prefix sum of estimated merge
//! work, so the parallel entry points can cut the rank range into chunks of
//! equal *work* (not equal vertex or edge count) before handing them to the
//! shared [`WorkerPool`]. Dense small graphs therefore parallelize and
//! skewed degree sequences don't strand one thread with all the hubs.
//!
//! Snapshots are immutable: mutate the [`Graph`] and freeze again. The
//! dynamic maintainer keeps using the mutable adjacency (its edits are
//! local); the batch paths — initial decomposition supports, whole-graph
//! counting — are the snapshot users.

use std::sync::Arc;

use crate::graph::Graph;
use crate::ids::{EdgeId, VertexId};
use crate::pool::WorkerPool;

/// Minimum [`CsrGraph::total_work`] (estimated intersection probes) before
/// the parallel snapshot kernels fan out to the worker pool. Below this a
/// pool round-trip plus the per-chunk accumulator merge costs more than
/// the whole sequential enumeration; measured on the BENCH_decompose
/// graph families (the smallest, `holme_kim` quick mode, sits well above
/// it at ~7e5 probes).
pub const PARALLEL_CSR_WORK_MIN: u64 = 1 << 15;

/// An immutable degree-oriented CSR snapshot of a [`Graph`].
///
/// # Examples
///
/// ```
/// use tkc_graph::{csr::CsrGraph, generators};
///
/// let g = generators::complete(5);
/// let snap = CsrGraph::freeze(&g);
/// assert_eq!(snap.triangle_count(), 10); // C(5,3)
/// let sup = snap.edge_supports();
/// assert!(g.edge_ids().all(|e| sup[e.index()] == 3));
/// ```
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Out-list boundaries per rank: out-edges of rank `r` live at
    /// `nbr[offsets[r]..offsets[r+1]]`. Length `n + 1`.
    offsets: Vec<u32>,
    /// Destination *rank* of each oriented edge, ascending within a list.
    nbr: Vec<u32>,
    /// Original edge id of each oriented edge (parallel to `nbr`).
    eid: Vec<EdgeId>,
    /// Original vertex id of each rank.
    vertex_of_rank: Vec<VertexId>,
    /// `Graph::edge_bound()` at freeze time — sizes support vectors so raw
    /// edge ids (dead slots included) stay valid indices.
    edge_bound: usize,
    /// Live edge count at freeze time.
    num_edges: usize,
    /// Prefix sums of per-rank estimated merge work. Length `n + 1`;
    /// `work[r+1] - work[r]` is the cost estimate of processing rank `r`.
    work: Vec<u64>,
}

impl CsrGraph {
    /// Snapshots `g` into oriented CSR form. `O(n + m)` time and space;
    /// no sorting pass is needed because destinations are appended in
    /// ascending rank order.
    pub fn freeze(g: &Graph) -> CsrGraph {
        let n = g.num_vertices();
        // Rank vertices by (degree, id) ascending via counting sort on
        // degree — O(n + max_deg).
        let max_deg = (0..n)
            .map(|v| g.degree(VertexId::from(v)))
            .max()
            .unwrap_or(0);
        let mut deg_count = vec![0u32; max_deg + 2];
        for v in 0..n {
            deg_count[g.degree(VertexId::from(v))] += 1;
        }
        let mut start = 0u32;
        for c in deg_count.iter_mut() {
            let count = *c;
            *c = start;
            start += count;
        }
        let mut vertex_of_rank = vec![VertexId(0); n];
        let mut rank = vec![0u32; n];
        for (v, rank_slot) in rank.iter_mut().enumerate() {
            // Ascending vertex id within a degree class keeps ties
            // deterministic: rank order is (degree, id).
            let d = g.degree(VertexId::from(v));
            let r = deg_count[d];
            deg_count[d] += 1;
            vertex_of_rank[r as usize] = VertexId::from(v);
            *rank_slot = r;
        }

        // Count out-degrees: each edge belongs to its lower-ranked endpoint.
        let mut offsets = vec![0u32; n + 1];
        for (_, u, v) in g.edges() {
            let src = rank[u.index()].min(rank[v.index()]);
            offsets[src as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let m = g.num_edges();
        let mut nbr = vec![0u32; m];
        let mut eid = vec![EdgeId(0); m];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        // Visit destinations in ascending rank; appending to each source's
        // out-list then yields lists already sorted by destination rank.
        for (r, &v) in vertex_of_rank.iter().enumerate() {
            let r = r as u32;
            for (u, e) in g.neighbors(v) {
                let ru = rank[u.index()];
                if ru < r {
                    let slot = cursor[ru as usize] as usize;
                    nbr[slot] = r;
                    eid[slot] = e;
                    cursor[ru as usize] += 1;
                }
            }
        }

        // Per-rank merge-work estimate: intersecting out(u) with out(v)
        // scans at most |out(u)| + |out(v)| entries; the +1 keeps chunk
        // boundaries meaningful on triangle-free stretches.
        let out_len = |r: usize| (offsets[r + 1] - offsets[r]) as u64;
        let mut work = vec![0u64; n + 1];
        for r in 0..n {
            let (s, e) = (offsets[r] as usize, offsets[r + 1] as usize);
            let mut w = 0u64;
            for &dst in &nbr[s..e] {
                w += 1 + out_len(r) + out_len(dst as usize);
            }
            work[r + 1] = work[r] + w;
        }

        CsrGraph {
            offsets,
            nbr,
            eid,
            vertex_of_rank,
            edge_bound: g.edge_bound(),
            num_edges: m,
            work,
        }
    }

    /// Number of vertices in the snapshot.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_of_rank.len()
    }

    /// Number of live edges captured by the snapshot.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The source graph's `edge_bound()` at freeze time (length of the
    /// support vectors this snapshot produces).
    #[inline]
    pub fn edge_bound(&self) -> usize {
        self.edge_bound
    }

    /// Total estimated intersection work — the parallel cutoff driver.
    #[inline]
    pub fn total_work(&self) -> u64 {
        *self.work.last().unwrap_or(&0)
    }

    /// The original vertex behind a rank (ranks are `(degree, id)`
    /// ascending).
    #[inline]
    pub fn vertex_of_rank(&self, rank: usize) -> VertexId {
        self.vertex_of_rank[rank]
    }

    /// Iterates the oriented out-list of `rank` as
    /// `(destination_rank, original_edge_id)` pairs, ascending by rank.
    pub fn out_edges(&self, rank: usize) -> impl Iterator<Item = (u32, EdgeId)> + '_ {
        let (s, e) = (self.offsets[rank] as usize, self.offsets[rank + 1] as usize);
        self.nbr[s..e]
            .iter()
            .copied()
            .zip(self.eid[s..e].iter().copied())
    }

    /// Calls `f(e_uv, e_uw, e_vw)` for every triangle, exactly once per
    /// triangle, over the rank range `lo..hi` of lowest-ranked corners.
    #[inline]
    fn for_each_triangle_in(
        &self,
        lo: usize,
        hi: usize,
        mut f: impl FnMut(EdgeId, EdgeId, EdgeId),
    ) {
        for u in lo..hi {
            let (us, ue) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            let u_nbr = &self.nbr[us..ue];
            let u_eid = &self.eid[us..ue];
            for (i, (&v, &e_uv)) in u_nbr.iter().zip(u_eid).enumerate() {
                let v = v as usize;
                let (vs, ve) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
                let v_nbr = &self.nbr[vs..ve];
                let v_eid = &self.eid[vs..ve];
                // Common out-neighbor w has rank > v, so only the tail of
                // out(u) past position i can match; out(v) is all > v.
                let (mut p, mut q) = (i + 1, 0usize);
                while p < u_nbr.len() && q < v_nbr.len() {
                    match u_nbr[p].cmp(&v_nbr[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            f(e_uv, u_eid[p], v_eid[q]);
                            p += 1;
                            q += 1;
                        }
                    }
                }
            }
        }
    }

    fn accumulate_supports(&self, lo: usize, hi: usize, sup: &mut [u32]) {
        self.for_each_triangle_in(lo, hi, |e_uv, e_uw, e_vw| {
            sup[e_uv.index()] += 1;
            sup[e_uw.index()] += 1;
            sup[e_vw.index()] += 1;
        });
    }

    /// Per-edge triangle counts indexed by raw edge id (dead slots read 0).
    /// Identical to [`crate::triangles::edge_supports`] on the same graph.
    pub fn edge_supports(&self) -> Vec<u32> {
        let mut sup = vec![0u32; self.edge_bound];
        self.accumulate_supports(0, self.num_vertices(), &mut sup);
        sup
    }

    /// Calls `f(e_uv, e_uw, e_vw)` for every triangle in the snapshot,
    /// exactly once per triangle (the oriented enumeration behind
    /// [`Self::edge_supports`]). This is how the level-synchronous peel
    /// materializes per-edge triangle lists without re-intersecting
    /// adjacency lists during the peel itself.
    #[inline]
    pub fn for_each_triangle(&self, f: impl FnMut(EdgeId, EdgeId, EdgeId)) {
        self.for_each_triangle_in(0, self.num_vertices(), f);
    }

    /// [`Self::for_each_triangle`] restricted to triangles whose
    /// lowest-ranked corner lies in `lo..hi`. Rank-ranged enumeration is
    /// what lets callers stop early — e.g. the peel's triangle
    /// materialization bails out per rank once its memory cap is hit
    /// instead of collecting a clique's cubic triangle count.
    #[inline]
    pub fn for_each_triangle_range(
        &self,
        lo: usize,
        hi: usize,
        f: impl FnMut(EdgeId, EdgeId, EdgeId),
    ) {
        self.for_each_triangle_in(lo, hi.min(self.num_vertices()), f);
    }

    /// Total triangle count (each triangle counted once).
    pub fn triangle_count(&self) -> u64 {
        let mut count = 0u64;
        self.for_each_triangle_in(0, self.num_vertices(), |_, _, _| count += 1);
        count
    }

    /// Splits the rank range into `chunks` contiguous ranges of roughly
    /// equal estimated work (per-chunk prefix-sum targets). Empty ranges
    /// are dropped.
    pub fn balanced_chunks(&self, chunks: usize) -> Vec<(usize, usize)> {
        let n = self.num_vertices();
        let chunks = chunks.max(1);
        let total = self.total_work();
        if n == 0 || total == 0 {
            return if n == 0 { Vec::new() } else { vec![(0, n)] };
        }
        let mut out = Vec::with_capacity(chunks);
        let mut lo = 0usize;
        for c in 1..=chunks {
            let target = total * c as u64 / chunks as u64;
            // First rank whose prefix work reaches the target.
            let hi = if c == chunks {
                n
            } else {
                self.work.partition_point(|&w| w < target).min(n)
            };
            if hi > lo {
                out.push((lo, hi));
                lo = hi;
            }
        }
        out
    }

    /// Parallel [`Self::edge_supports`] on the shared [`WorkerPool`]:
    /// wedge-balanced chunks, per-chunk thread-local accumulators merged at
    /// the end. Exact same vector as the sequential kernels (support counts
    /// are integers; summation order cannot change them).
    ///
    /// Two guards keep small inputs off the pool (the BENCH_decompose v1
    /// regression where 2 requested threads ran *slower* than the
    /// sequential kernel): the worker count is capped at the pool's real
    /// concurrency ([`WorkerPool::concurrency_cap`] — extra chunks beyond
    /// that only queue), and snapshots whose total estimated intersection
    /// work is below [`PARALLEL_CSR_WORK_MIN`] fall back to the sequential
    /// kernel outright, because a job round-trip plus the per-chunk
    /// accumulator merge costs more than the enumeration itself.
    pub fn edge_supports_parallel(self: &Arc<Self>, threads: usize) -> Vec<u32> {
        let workers = WorkerPool::global().concurrency_cap(threads);
        if workers <= 1 || self.num_vertices() == 0 || self.total_work() < PARALLEL_CSR_WORK_MIN {
            return self.edge_supports();
        }
        let chunks = self.balanced_chunks(workers);
        if chunks.len() <= 1 {
            return self.edge_supports();
        }
        let jobs: Vec<_> = chunks
            .into_iter()
            .map(|(lo, hi)| {
                let snap = Arc::clone(self);
                move || {
                    let mut local = vec![0u32; snap.edge_bound];
                    snap.accumulate_supports(lo, hi, &mut local);
                    local
                }
            })
            .collect();
        let locals = WorkerPool::global().run(jobs);
        self.merge_supports(locals, workers)
    }

    /// Sums per-chunk accumulators into the final support vector. The
    /// merge is itself fanned out across disjoint edge-id ranges when the
    /// vector is long enough to amortize a second pool round — the serial
    /// merge was `O(workers * edge_bound)` on the caller thread, a real
    /// slice of the small-thread overhead this path used to carry. Chunk
    /// count cannot change the result: every slot is the sum of the same
    /// integers in the same per-chunk order.
    fn merge_supports(self: &Arc<Self>, locals: Vec<Vec<u32>>, workers: usize) -> Vec<u32> {
        const PARALLEL_MERGE_MIN: usize = 1 << 18;
        if locals.len() == 1 {
            let mut locals = locals;
            // analyze: allow(panic-surface): len checked == 1 above
            return locals.pop().expect("one accumulator");
        }
        if workers <= 1 || self.edge_bound * locals.len() < PARALLEL_MERGE_MIN {
            let mut sup = vec![0u32; self.edge_bound];
            for local in locals {
                for (acc, x) in sup.iter_mut().zip(local) {
                    *acc += x;
                }
            }
            return sup;
        }
        let locals = Arc::new(locals);
        let step = self.edge_bound.div_ceil(workers);
        let jobs: Vec<_> = (0..workers)
            .map(|w| {
                let locals = Arc::clone(&locals);
                let lo = (w * step).min(self.edge_bound);
                let hi = ((w + 1) * step).min(self.edge_bound);
                move || {
                    let mut seg = vec![0u32; hi - lo];
                    for local in locals.iter() {
                        for (acc, x) in seg.iter_mut().zip(&local[lo..hi]) {
                            *acc += x;
                        }
                    }
                    seg
                }
            })
            .collect();
        WorkerPool::global().run(jobs).concat()
    }

    /// Parallel [`Self::triangle_count`] on the shared [`WorkerPool`].
    /// Same worker cap and work floor as [`Self::edge_supports_parallel`].
    pub fn triangle_count_parallel(self: &Arc<Self>, threads: usize) -> u64 {
        let workers = WorkerPool::global().concurrency_cap(threads);
        if workers <= 1 || self.num_vertices() == 0 || self.total_work() < PARALLEL_CSR_WORK_MIN {
            return self.triangle_count();
        }
        let chunks = self.balanced_chunks(workers);
        if chunks.len() <= 1 {
            return self.triangle_count();
        }
        let jobs: Vec<_> = chunks
            .into_iter()
            .map(|(lo, hi)| {
                let snap = Arc::clone(self);
                move || {
                    let mut count = 0u64;
                    snap.for_each_triangle_in(lo, hi, |_, _, _| count += 1);
                    count
                }
            })
            .collect();
        WorkerPool::global().run(jobs).into_iter().sum()
    }

    /// Consistency check for tests: oriented lists sorted, each captured
    /// edge id maps back to its endpoints, edge count matches.
    pub fn check_invariants(&self, g: &Graph) -> Result<(), String> {
        if self.nbr.len() != self.num_edges || self.eid.len() != self.num_edges {
            return Err("oriented arrays disagree with edge count".into());
        }
        for r in 0..self.num_vertices() {
            let (s, e) = (self.offsets[r] as usize, self.offsets[r + 1] as usize);
            let list = &self.nbr[s..e];
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("out-list of rank {r} not strictly ascending"));
            }
            for (i, &dst) in list.iter().enumerate() {
                if dst as usize <= r {
                    return Err(format!("edge at rank {r} not oriented upward"));
                }
                let (a, b) = (self.vertex_of_rank[r], self.vertex_of_rank[dst as usize]);
                match g.endpoints_checked(self.eid[s + i]) {
                    Some((x, y)) if (x == a && y == b) || (x == b && y == a) => {}
                    _ => {
                        return Err(format!(
                            "edge id {:?} does not connect ranks {r} and {dst}",
                            self.eid[s + i]
                        ))
                    }
                }
            }
        }
        Ok(())
    }
}

/// Freezes `g` and computes per-edge supports with the sequential oriented
/// kernel. Drop-in replacement for [`crate::triangles::edge_supports`].
pub fn edge_supports_csr(g: &Graph) -> Vec<u32> {
    CsrGraph::freeze(g).edge_supports()
}

/// Freezes `g` and computes per-edge supports with `threads` workers
/// (`0` = available parallelism) on the shared pool, chunked by estimated
/// intersection work. Bit-identical to the sequential paths.
pub fn edge_supports_csr_parallel(g: &Graph, threads: usize) -> Vec<u32> {
    Arc::new(CsrGraph::freeze(g)).edge_supports_parallel(threads)
}

/// Freezes `g` and counts triangles with the oriented kernel.
pub fn triangle_count_csr(g: &Graph) -> u64 {
    CsrGraph::freeze(g).triangle_count()
}

/// Freezes `g` and counts triangles with `threads` workers (`0` = auto).
pub fn triangle_count_csr_parallel(g: &Graph, threads: usize) -> u64 {
    Arc::new(CsrGraph::freeze(g)).triangle_count_parallel(threads)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::generators;
    use crate::triangles;

    #[test]
    fn empty_and_isolated_graphs() {
        let snap = CsrGraph::freeze(&Graph::new());
        assert_eq!(snap.num_vertices(), 0);
        assert_eq!(snap.edge_supports(), Vec::<u32>::new());
        assert_eq!(snap.triangle_count(), 0);

        let mut g = Graph::new();
        g.add_vertices(5);
        let snap = Arc::new(CsrGraph::freeze(&g));
        assert_eq!(snap.triangle_count(), 0);
        assert_eq!(snap.edge_supports_parallel(4), vec![0u32; 0]);
    }

    #[test]
    fn matches_hash_kernel_on_generators() {
        let graphs = [
            generators::complete(8),
            generators::holme_kim(300, 3, 0.6, 11),
            generators::planted_partition(3, 15, 0.6, 0.05, 5),
            generators::gnp(80, 0.15, 2),
            generators::star(20),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let snap = Arc::new(CsrGraph::freeze(g));
            snap.check_invariants(g).unwrap();
            let hash = triangles::edge_supports(g);
            assert_eq!(snap.edge_supports(), hash, "graph {i} seq");
            assert_eq!(snap.edge_supports_parallel(3), hash, "graph {i} par");
            assert_eq!(
                snap.triangle_count(),
                triangles::triangle_count(g),
                "graph {i}"
            );
            assert_eq!(
                snap.triangle_count_parallel(3),
                triangles::triangle_count(g),
                "graph {i} par count"
            );
        }
    }

    #[test]
    fn dead_slots_read_zero_and_roundtrip() {
        let mut g = generators::complete(7);
        for (u, v) in [(0u32, 1u32), (2, 3), (4, 5)] {
            g.remove_edge_between(VertexId(u), VertexId(v)).unwrap();
        }
        // Re-add one edge so a freed slot is live again.
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        let snap = CsrGraph::freeze(&g);
        snap.check_invariants(&g).unwrap();
        assert_eq!(snap.edge_bound(), g.edge_bound());
        assert_eq!(snap.edge_supports(), triangles::edge_supports(&g));
        assert_eq!(snap.triangle_count(), triangles::triangle_count(&g));
    }

    #[test]
    fn orientation_is_degree_then_id() {
        // Star: hub 0 has max degree, leaves degree 1 → hub is the last
        // rank and every edge is oriented leaf → hub.
        let g = generators::star(6);
        let snap = CsrGraph::freeze(&g);
        assert_eq!(snap.vertex_of_rank(6), VertexId(0));
        let hub_out: Vec<_> = snap.out_edges(6).collect();
        assert!(hub_out.is_empty(), "hub must have an empty out-list");
        for r in 0..6 {
            assert_eq!(snap.out_edges(r).count(), 1);
        }
    }

    #[test]
    fn balanced_chunks_cover_range_without_overlap() {
        let g = generators::holme_kim(500, 4, 0.7, 3);
        let snap = CsrGraph::freeze(&g);
        for chunks in [1, 2, 3, 7, 16] {
            let parts = snap.balanced_chunks(chunks);
            assert!(!parts.is_empty());
            assert_eq!(parts[0].0, 0);
            assert_eq!(parts.last().unwrap().1, snap.num_vertices());
            for w in parts.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must tile");
            }
            // Work balance: no chunk exceeds ~2x the ideal share (loose
            // bound; single heavy vertices can't be split).
            if chunks > 1 && parts.len() == chunks {
                let ideal = snap.total_work() / chunks as u64;
                for &(lo, hi) in &parts {
                    let w: u64 = snap.work[hi] - snap.work[lo];
                    assert!(
                        w <= ideal * 2 + snap.work[snap.num_vertices()] / parts.len() as u64 + 1
                    );
                }
            }
        }
    }

    #[test]
    fn oversubscribed_thread_counts_are_exact() {
        let g = generators::planted_partition(4, 10, 0.7, 0.05, 9);
        let hash = triangles::edge_supports(&g);
        for threads in [2, 8, 64] {
            assert_eq!(edge_supports_csr_parallel(&g, threads), hash);
        }
        assert_eq!(edge_supports_csr(&g), hash);
        assert_eq!(triangle_count_csr(&g), triangles::triangle_count(&g));
        assert_eq!(
            triangle_count_csr_parallel(&g, 8),
            triangles::triangle_count(&g)
        );
    }
}
