//! Full-adjacency CSR companion for the level-synchronous peel.
//!
//! [`crate::csr::CsrGraph`] stores only the degree-oriented *half* of each
//! edge — exactly what exactly-once triangle enumeration wants, and
//! exactly what a peel cannot use: peeling edge `{u, v}` must find **all**
//! triangles on the edge, which needs the full neighborhoods of both
//! endpoints. [`PeelCsr`] derives that view from a frozen snapshot in
//! `O(n + m)`: per-rank full adjacency as two flat arrays (`nbr` dest
//! ranks ascending, `eid` original edge ids), plus a per-edge endpoint
//! table so a harvested edge id maps straight back to its two rank rows.
//!
//! Unlike the frozen snapshot this structure is *peel-aware*: every list
//! carries an occupancy (`len`) separate from its capacity (`offsets`),
//! and [`PeelCsr::compact`] drops entries whose edges have been peeled
//! once a list is at least half dead. Each half-edge is removed at most
//! once, so total compaction work is `O(m)` amortized — and every merge
//! after a compaction scans only surviving edges, which is where the
//! level-synchronous peel beats the seed bucket peel even on one core:
//! the seed's per-pop merges walk full original adjacency lists (peeled
//! entries included) for the whole run.
//!
//! The arrays are read-shared across worker threads during a frontier
//! round (via `Arc`) and mutated only between rounds, when the caller
//! holds the only reference again.

use crate::csr::CsrGraph;
use crate::ids::EdgeId;

/// Sentinel rank for dead edge-id slots in the endpoint table.
const NO_RANK: u32 = u32::MAX;

/// Full-adjacency peel view of a [`CsrGraph`] snapshot.
///
/// # Examples
///
/// ```
/// use tkc_graph::{csr::CsrGraph, peel_csr::PeelCsr, generators};
///
/// let g = generators::complete(4);
/// let peel = PeelCsr::build(&CsrGraph::freeze(&g));
/// assert_eq!(peel.live_edges().len(), 6);
/// let e = peel.live_edges()[0];
/// let mut tris = 0;
/// peel.for_each_triangle_on_edge(e, |_, _| tris += 1);
/// assert_eq!(tris, 2); // every K4 edge sits on two triangles
/// ```
#[derive(Debug, Clone)]
pub struct PeelCsr {
    /// Capacity boundaries per rank (fixed at build). Length `n + 1`.
    offsets: Vec<u32>,
    /// Current occupancy per rank; `len[r] <= offsets[r+1] - offsets[r]`.
    len: Vec<u32>,
    /// Destination rank of each half-edge, ascending within a live list.
    nbr: Vec<u32>,
    /// Original edge id per half-edge (parallel to `nbr`).
    eid: Vec<EdgeId>,
    /// `(lo_rank, hi_rank)` per raw edge id; `(NO_RANK, NO_RANK)` for dead
    /// slots.
    endpoints: Vec<(u32, u32)>,
    /// Live edge ids, ascending.
    live: Vec<EdgeId>,
    /// Per-rank count of entries whose edge has been retired since the
    /// last compaction of that list.
    retired: Vec<u32>,
}

impl PeelCsr {
    /// Builds the full-adjacency view of a frozen snapshot. `O(n + m)`;
    /// lists come out sorted by destination rank without a sorting pass
    /// (in-neighbors arrive in ascending source order, out-neighbors are
    /// already ascending in the snapshot).
    pub fn build(csr: &CsrGraph) -> PeelCsr {
        let n = csr.num_vertices();
        let mut degree = vec![0u32; n];
        for r in 0..n {
            for (dst, _) in csr.out_edges(r) {
                degree[r] += 1;
                degree[dst as usize] += 1;
            }
        }
        let mut offsets = vec![0u32; n + 1];
        for r in 0..n {
            offsets[r + 1] = offsets[r] + degree[r];
        }
        let half_edges = offsets[n] as usize;
        let mut nbr = vec![0u32; half_edges];
        let mut eid = vec![EdgeId(0); half_edges];
        let mut endpoints = vec![(NO_RANK, NO_RANK); csr.edge_bound()];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        // Pass 1: in-neighbors. Iterating source ranks ascending appends
        // each destination's in-portion (all ranks < dst) in sorted order.
        for r in 0..n {
            for (dst, e) in csr.out_edges(r) {
                let slot = cursor[dst as usize] as usize;
                nbr[slot] = r as u32;
                eid[slot] = e;
                cursor[dst as usize] += 1;
                endpoints[e.index()] = (r as u32, dst);
            }
        }
        // Pass 2: out-neighbors (all ranks > r), appended after the full
        // in-portion, themselves ascending by construction of the snapshot.
        for (r, cur) in cursor.iter_mut().enumerate() {
            for (dst, e) in csr.out_edges(r) {
                let slot = *cur as usize;
                nbr[slot] = dst;
                eid[slot] = e;
                *cur += 1;
            }
        }
        let live: Vec<EdgeId> = (0..endpoints.len())
            .filter(|&i| endpoints[i].0 != NO_RANK)
            .map(EdgeId::from)
            .collect();
        let len: Vec<u32> = (0..n).map(|r| offsets[r + 1] - offsets[r]).collect();
        PeelCsr {
            offsets,
            len,
            nbr,
            eid,
            endpoints,
            live,
            retired: vec![0u32; n],
        }
    }

    /// Number of ranks (vertices) in the view.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.len.len()
    }

    /// `edge_bound()` of the source graph (support/κ vector length).
    #[inline]
    pub fn edge_bound(&self) -> usize {
        self.endpoints.len()
    }

    /// Live edge ids at freeze time, ascending.
    #[inline]
    pub fn live_edges(&self) -> &[EdgeId] {
        &self.live
    }

    /// Rank endpoints of a live edge (`lo < hi`); `None` for dead slots.
    #[inline]
    pub fn endpoints_of(&self, e: EdgeId) -> Option<(u32, u32)> {
        match self.endpoints.get(e.index()) {
            Some(&(lo, hi)) if lo != NO_RANK => Some((lo, hi)),
            _ => None,
        }
    }

    /// Estimated cost of enumerating the triangles on `e` right now:
    /// the size of the smaller current neighborhood. Shrinks as
    /// compaction retires peeled edges — frontier chunking stays balanced
    /// late into the peel.
    #[inline]
    pub fn edge_work(&self, e: EdgeId) -> u64 {
        match self.endpoints_of(e) {
            Some((u, v)) => 1 + u64::from(self.len[u as usize].min(self.len[v as usize])),
            None => 1,
        }
    }

    /// The live portion of rank `r`'s adjacency as `(ranks, edge ids)`.
    #[inline]
    fn list(&self, r: u32) -> (&[u32], &[EdgeId]) {
        let s = self.offsets[r as usize] as usize;
        let e = s + self.len[r as usize] as usize;
        (&self.nbr[s..e], &self.eid[s..e])
    }

    /// Calls `f(e_uw, e_vw)` for every triangle `{u, v, w}` on the live
    /// edge `e = {u, v}` still present in the (possibly compacted) lists.
    /// Entries of retired-but-uncompacted edges are reported too — peel
    /// callers filter on their own processed state, which is exactly why
    /// compaction is free to lag.
    ///
    /// Mirrors [`crate::Graph::for_each_triangle_on_edge`]'s skew rule:
    /// sorted merge for comparable list lengths, binary probes of the long
    /// list when one side is 16x shorter (hub–leaf edges would otherwise
    /// pay the hub's whole list per peel visit).
    #[inline]
    pub fn for_each_triangle_on_edge<F>(&self, e: EdgeId, mut f: F)
    where
        F: FnMut(EdgeId, EdgeId),
    {
        let Some((u, v)) = self.endpoints_of(e) else {
            return;
        };
        let (mut a_nbr, mut a_eid) = self.list(u);
        let (mut b_nbr, mut b_eid) = self.list(v);
        let mut swapped = false;
        if a_nbr.len() > b_nbr.len() {
            std::mem::swap(&mut a_nbr, &mut b_nbr);
            std::mem::swap(&mut a_eid, &mut b_eid);
            swapped = true;
        }
        if a_nbr.len() * 16 < b_nbr.len() {
            for (i, &w) in a_nbr.iter().enumerate() {
                if let Ok(j) = b_nbr.binary_search(&w) {
                    if swapped {
                        f(b_eid[j], a_eid[i]);
                    } else {
                        f(a_eid[i], b_eid[j]);
                    }
                }
            }
            return;
        }
        let (mut p, mut q) = (0usize, 0usize);
        while p < a_nbr.len() && q < b_nbr.len() {
            match a_nbr[p].cmp(&b_nbr[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    if swapped {
                        f(b_eid[q], a_eid[p]);
                    } else {
                        f(a_eid[p], b_eid[q]);
                    }
                    p += 1;
                    q += 1;
                }
            }
        }
    }

    /// Records that `e` has been peeled: both endpoint lists now carry one
    /// dead entry each. Cheap bookkeeping only — the entries stay in place
    /// until [`Self::compact`] decides a list is worth rewriting.
    #[inline]
    pub fn retire(&mut self, e: EdgeId) {
        if let Some((u, v)) = self.endpoints_of(e) {
            self.retired[u as usize] += 1;
            self.retired[v as usize] += 1;
        }
    }

    /// Compacts every list that is at least half retired, dropping entries
    /// for which `is_peeled` returns true. Order within a list is
    /// preserved, so merges stay sorted. The half-dead threshold gives the
    /// usual amortized-`O(m)` bound: a list of length `L` is rewritten only
    /// after `L/2` retirements since its last rewrite.
    pub fn compact(&mut self, is_peeled: impl Fn(EdgeId) -> bool) {
        for r in 0..self.len.len() {
            let dead = self.retired[r];
            if dead == 0 || u64::from(dead) * 2 < u64::from(self.len[r]) {
                continue;
            }
            let start = self.offsets[r] as usize;
            let end = start + self.len[r] as usize;
            let mut write = start;
            for read in start..end {
                if !is_peeled(self.eid[read]) {
                    self.nbr[write] = self.nbr[read];
                    self.eid[write] = self.eid[read];
                    write += 1;
                }
            }
            self.len[r] = (write - start) as u32;
            self.retired[r] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::generators;
    use crate::graph::Graph;
    use crate::ids::VertexId;

    fn triangles_via_peel_view(g: &Graph) -> Vec<usize> {
        let peel = PeelCsr::build(&CsrGraph::freeze(g));
        let mut counts = vec![0usize; g.edge_bound()];
        for &e in peel.live_edges() {
            peel.for_each_triangle_on_edge(e, |_, _| counts[e.index()] += 1);
        }
        counts
    }

    #[test]
    fn per_edge_triangles_match_graph_enumeration() {
        for (i, g) in [
            generators::complete(8),
            generators::holme_kim(200, 3, 0.6, 11),
            generators::planted_partition(3, 10, 0.6, 0.05, 5),
            generators::gnp(60, 0.15, 2),
            generators::star(20),
            Graph::new(),
        ]
        .iter()
        .enumerate()
        {
            let by_view = triangles_via_peel_view(g);
            let by_graph: Vec<usize> = (0..g.edge_bound())
                .map(|idx| {
                    let e = EdgeId::from(idx);
                    if g.endpoints_checked(e).is_none() {
                        0
                    } else {
                        let mut c = 0;
                        g.for_each_triangle_on_edge(e, |_, _, _| c += 1);
                        c
                    }
                })
                .collect();
            assert_eq!(by_view, by_graph, "graph {i}");
        }
    }

    #[test]
    fn reported_edge_ids_form_real_triangles() {
        let g = generators::gnp(40, 0.25, 7);
        let peel = PeelCsr::build(&CsrGraph::freeze(&g));
        for &e in peel.live_edges() {
            let (u, v) = g.endpoints(e);
            peel.for_each_triangle_on_edge(e, |e1, e2| {
                // One reported edge touches u, the other touches v (in
                // some order), and they share the triangle's apex.
                let (a, b) = g.endpoints(e1);
                let (c, d) = g.endpoints(e2);
                let (apex_u, apex_v) = if a == u || b == u {
                    assert!(c == v || d == v, "second edge must touch v");
                    (if a == u { b } else { a }, if c == v { d } else { c })
                } else {
                    assert!(a == v || b == v, "first edge must touch an endpoint");
                    assert!(c == u || d == u, "second edge must touch u");
                    (if c == u { d } else { c }, if a == v { b } else { a })
                };
                assert_eq!(apex_u, apex_v, "triangle edges must share the apex");
            });
        }
    }

    #[test]
    fn dead_slots_have_no_endpoints() {
        let mut g = generators::complete(6);
        let dead = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.remove_edge(dead).unwrap();
        let peel = PeelCsr::build(&CsrGraph::freeze(&g));
        assert!(peel.endpoints_of(dead).is_none());
        assert_eq!(peel.edge_work(dead), 1);
        assert!(!peel.live_edges().contains(&dead));
        assert_eq!(peel.live_edges().len(), g.num_edges());
        // Live list is ascending (the peel's determinism leans on this).
        assert!(peel.live_edges().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn compaction_preserves_surviving_triangles() {
        let g = generators::planted_partition(2, 8, 0.8, 0.1, 3);
        let mut peel = PeelCsr::build(&CsrGraph::freeze(&g));
        // Retire every third live edge, then compact with that set dead.
        let peeled: std::collections::HashSet<EdgeId> =
            peel.live_edges().iter().copied().step_by(3).collect();
        for &e in peeled.clone().iter() {
            peel.retire(e);
        }
        peel.compact(|e| peeled.contains(&e));
        for &e in peel.live_edges() {
            if peeled.contains(&e) {
                continue;
            }
            let mut via_view = Vec::new();
            peel.for_each_triangle_on_edge(e, |e1, e2| {
                if !peeled.contains(&e1) && !peeled.contains(&e2) {
                    via_view.push((e1.min(e2), e1.max(e2)));
                }
            });
            let mut via_graph = Vec::new();
            g.for_each_triangle_on_edge(e, |_, e1, e2| {
                if !peeled.contains(&e1) && !peeled.contains(&e2) {
                    via_graph.push((e1.min(e2), e1.max(e2)));
                }
            });
            via_view.sort_unstable();
            via_graph.sort_unstable();
            assert_eq!(via_view, via_graph);
        }
    }

    #[test]
    fn edge_work_tracks_compaction() {
        let g = generators::complete(5);
        let mut peel = PeelCsr::build(&CsrGraph::freeze(&g));
        let e = peel.live_edges()[0];
        let before = peel.edge_work(e);
        // Retire everything except e; lists shrink to just e's entries.
        let others: Vec<EdgeId> = peel
            .live_edges()
            .iter()
            .copied()
            .filter(|&x| x != e)
            .collect();
        for &x in &others {
            peel.retire(x);
        }
        peel.compact(|x| x != e);
        assert!(peel.edge_work(e) < before);
        assert_eq!(peel.edge_work(e), 2); // one survivor per endpoint list
    }
}
