//! Strongly-typed vertex and edge identifiers.
//!
//! Both identifiers are thin `u32` newtypes: the paper's largest dataset
//! (LiveJournal, 32.8M edges) fits comfortably, and halving the index width
//! relative to `usize` keeps the peeling algorithm's working set small.

use std::fmt;

/// Identifier of a vertex. Dense: vertices are numbered `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

/// Identifier of an edge slot.
///
/// Edge ids are *stable*: removing an edge frees its slot for reuse by a
/// later insertion, but ids of live edges never change. This lets algorithm
/// state (`κ` values, supports, marks) live in plain `Vec`s indexed by edge
/// id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    #[inline]
    fn from(v: usize) -> Self {
        // analyze: allow(panic-surface): graphs beyond u32 vertices are outside the supported scale; panic is the contract
        VertexId(u32::try_from(v).expect("vertex id overflows u32"))
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(e: u32) -> Self {
        EdgeId(e)
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(e: usize) -> Self {
        // analyze: allow(panic-surface): same scale contract as VertexId
        EdgeId(u32::try_from(e).expect("edge id overflows u32"))
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(42u32);
        assert_eq!(v.index(), 42);
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(format!("{v}"), "42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from(7usize);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e:?}"), "e7");
        assert_eq!(format!("{e}"), "7");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_vertex_id_panics() {
        let _ = VertexId::from(usize::MAX);
    }
}
