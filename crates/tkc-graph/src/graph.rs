//! The dynamic undirected simple graph used by every algorithm in the suite.
//!
//! Design notes (see DESIGN.md §3):
//!
//! * adjacency is a per-vertex `Vec<(VertexId, EdgeId)>` kept **sorted by
//!   neighbor id**, so common-neighbor (triangle) enumeration is a linear
//!   merge and edge lookup is a binary search;
//! * edge slots are stable under deletion (free-list reuse), so per-edge
//!   algorithm state can live in flat `Vec`s indexed by [`EdgeId`];
//! * the graph is *simple*: no self loops, no parallel edges — triangles are
//!   only well-defined on simple graphs.

use crate::error::GraphError;
use crate::ids::{EdgeId, VertexId};

/// One edge slot: either a live edge or a link in the free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeSlot {
    Live(VertexId, VertexId),
    Free { next: Option<EdgeId> },
}

/// A dynamic undirected simple graph with stable edge identifiers.
///
/// # Examples
///
/// ```
/// use tkc_graph::{Graph, VertexId};
///
/// let mut g = Graph::new();
/// g.add_vertices(3);
/// let e = g.add_edge(VertexId(0), VertexId(1)).unwrap();
/// g.add_edge(VertexId(1), VertexId(2)).unwrap();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.endpoints(e), (VertexId(0), VertexId(1)));
/// g.remove_edge(e).unwrap();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<(VertexId, EdgeId)>>,
    edges: Vec<EdgeSlot>,
    free_head: Option<EdgeId>,
    live_edges: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with `n` isolated vertices and room for
    /// `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut g = Graph {
            adj: Vec::with_capacity(n),
            edges: Vec::with_capacity(m),
            free_head: None,
            live_edges: 0,
        };
        g.add_vertices(n);
        g
    }

    /// Builds a graph with `n` vertices from an edge iterator, silently
    /// skipping duplicates and self loops. Handy for generators and parsers.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut g = Graph::with_capacity(n, 0);
        for (u, v) in edges {
            let (u, v) = (VertexId(u), VertexId(v));
            let hi = u.0.max(v.0) as usize;
            if hi >= g.adj.len() {
                g.add_vertices(hi + 1 - g.adj.len());
            }
            let _ = g.try_add_edge(u, v);
        }
        g
    }

    /// Rebuilds a graph in one pass from pre-sorted adjacency lists and an
    /// edge-slot table (`slots[i] = Some((u, v))` for live edge `i` with
    /// `u < v`, `None` for a dead slot). This is the binary fast path the
    /// engine takes when reopening from a packed store: the store already
    /// holds every list sorted by neighbor id, so startup skips both the
    /// text parse and the per-edge binary-search insertion of
    /// [`Self::add_edge`] (`O(deg)` memmove per edge).
    ///
    /// The parts are fully validated — sortedness, symmetry, slot/entry
    /// agreement — so a corrupt or hand-rolled input yields an error, never
    /// a graph that silently violates the invariants the maintainer relies
    /// on. Dead slots are chained into the free list with the lowest id
    /// reused first.
    pub fn from_parts(
        adj: Vec<Vec<(VertexId, EdgeId)>>,
        slots: Vec<Option<(VertexId, VertexId)>>,
    ) -> Result<Graph, String> {
        let mut live_edges = 0usize;
        let mut free_head = None;
        let mut edges = Vec::with_capacity(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            match *slot {
                Some((u, v)) => {
                    if u >= v {
                        return Err(format!("edge slot {i} endpoints not normalized"));
                    }
                    if v.index() >= adj.len() {
                        return Err(format!("edge slot {i} endpoint {v} out of range"));
                    }
                    live_edges += 1;
                    edges.push(EdgeSlot::Live(u, v));
                }
                None => edges.push(EdgeSlot::Free { next: None }),
            }
        }
        // Chain dead slots highest-first so the head is the lowest id.
        for i in (0..edges.len()).rev() {
            if let Some(EdgeSlot::Free { next }) = edges.get_mut(i) {
                *next = free_head;
                free_head = Some(EdgeId::from(i));
            }
        }
        let g = Graph {
            adj,
            edges,
            free_head,
            live_edges,
        };
        // check_invariants proves every live slot appears in both endpoint
        // lists and every list is strictly sorted; the entry count closes
        // the other direction (no extra entries naming dead or foreign
        // ids).
        let entries: usize = g.adj.iter().map(Vec::len).sum();
        if entries != 2 * live_edges {
            return Err(format!(
                "adjacency holds {entries} entries but {live_edges} live edges need {}",
                2 * live_edges
            ));
        }
        g.check_invariants()?;
        Ok(g)
    }

    /// Number of vertices (isolated vertices included).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of live edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.live_edges
    }

    /// Exclusive upper bound on live edge ids. Use as the length of flat
    /// per-edge state vectors (`vec![x; g.edge_bound()]`).
    #[inline]
    pub fn edge_bound(&self) -> usize {
        self.edges.len()
    }

    /// Appends one isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::from(self.adj.len());
        self.adj.push(Vec::new());
        id
    }

    /// Appends `n` isolated vertices.
    pub fn add_vertices(&mut self, n: usize) {
        self.adj.resize_with(self.adj.len() + n, Vec::new);
    }

    /// True if `v` is a vertex of the graph.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.adj.len()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    /// Panics if `v` is not a vertex.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Iterates over `(neighbor, edge_id)` pairs of `v` in increasing
    /// neighbor order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.adj[v.index()].iter().copied()
    }

    /// The sorted adjacency slice of `v` (exposed for merge-style
    /// intersections in hot loops).
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Endpoints of live edge `e`, with `u < v`.
    ///
    /// # Panics
    /// Panics if `e` is not a live edge.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        match self.edges[e.index()] {
            EdgeSlot::Live(u, v) => (u, v),
            EdgeSlot::Free { .. } => panic!("edge {e:?} is not live"),
        }
    }

    /// Endpoints of `e` if it is live.
    #[inline]
    pub fn endpoints_checked(&self, e: EdgeId) -> Option<(VertexId, VertexId)> {
        match self.edges.get(e.index()) {
            Some(&EdgeSlot::Live(u, v)) => Some((u, v)),
            _ => None,
        }
    }

    /// True if `e` refers to a live edge.
    #[inline]
    pub fn is_live(&self, e: EdgeId) -> bool {
        matches!(self.edges.get(e.index()), Some(EdgeSlot::Live(..)))
    }

    /// The id of the edge between `u` and `v`, if present.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if !self.contains_vertex(u) || !self.contains_vertex(v) {
            return None;
        }
        // Search the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a.index()]
            .binary_search_by_key(&b, |&(w, _)| w)
            .ok()
            .map(|i| self.adj[a.index()][i].1)
    }

    /// True if the edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Inserts the edge `{u, v}`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !self.contains_vertex(u) {
            return Err(GraphError::UnknownVertex(u));
        }
        if !self.contains_vertex(v) {
            return Err(GraphError::UnknownVertex(v));
        }
        // Find insertion points first so a duplicate leaves the graph
        // untouched.
        let pos_u = match self.adj[u.index()].binary_search_by_key(&v, |&(w, _)| w) {
            Ok(_) => return Err(GraphError::DuplicateEdge(u, v)),
            Err(i) => i,
        };
        let pos_v = match self.adj[v.index()].binary_search_by_key(&u, |&(w, _)| w) {
            Ok(_) => return Err(GraphError::DuplicateEdge(u, v)),
            Err(i) => i,
        };
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        let eid = match self.free_head {
            Some(free) => {
                let next = match self.edges[free.index()] {
                    EdgeSlot::Free { next } => next,
                    EdgeSlot::Live(..) => unreachable!("free list points at live edge"),
                };
                self.free_head = next;
                self.edges[free.index()] = EdgeSlot::Live(lo, hi);
                free
            }
            None => {
                let id = EdgeId::from(self.edges.len());
                self.edges.push(EdgeSlot::Live(lo, hi));
                id
            }
        };
        self.adj[u.index()].insert(pos_u, (v, eid));
        self.adj[v.index()].insert(pos_v, (u, eid));
        self.live_edges += 1;
        Ok(eid)
    }

    /// Inserts the edge `{u, v}` unless it already exists; returns the new
    /// id or `None` for duplicates/self-loops.
    ///
    /// # Panics
    /// Panics if either endpoint is not a vertex.
    pub fn try_add_edge(&mut self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        match self.add_edge(u, v) {
            Ok(e) => Some(e),
            Err(GraphError::DuplicateEdge(..)) | Err(GraphError::SelfLoop(..)) => None,
            Err(e @ GraphError::UnknownVertex(..)) => panic!("{e}"),
            Err(GraphError::MissingEdge(..)) => unreachable!(),
        }
    }

    /// Removes live edge `e`.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<(), GraphError> {
        let (u, v) = match self.edges.get(e.index()) {
            Some(&EdgeSlot::Live(u, v)) => (u, v),
            _ => return Err(GraphError::MissingEdge(VertexId(0), VertexId(0))),
        };
        self.detach(u, v);
        self.detach(v, u);
        self.edges[e.index()] = EdgeSlot::Free {
            next: self.free_head,
        };
        self.free_head = Some(e);
        self.live_edges -= 1;
        Ok(())
    }

    /// Removes the edge `{u, v}` and returns its (now freed) id.
    pub fn remove_edge_between(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        let e = self
            .edge_between(u, v)
            .ok_or(GraphError::MissingEdge(u, v))?;
        self.remove_edge(e)?;
        Ok(e)
    }

    fn detach(&mut self, from: VertexId, to: VertexId) {
        let list = &mut self.adj[from.index()];
        let i = list
            .binary_search_by_key(&to, |&(w, _)| w)
            .expect("adjacency lists out of sync");
        list.remove(i);
    }

    /// Iterates over live edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, s)| match s {
            EdgeSlot::Live(..) => Some(EdgeId::from(i)),
            EdgeSlot::Free { .. } => None,
        })
    }

    /// Iterates over `(edge_id, u, v)` triples of live edges with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, s)| match s {
            EdgeSlot::Live(u, v) => Some((EdgeId::from(i), *u, *v)),
            EdgeSlot::Free { .. } => None,
        })
    }

    /// Iterates over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.adj.len() as u32).map(VertexId)
    }

    /// Sum of `min(deg(u), deg(v))` over edges: the cost driver of triangle
    /// enumeration; exposed so harnesses can report workload difficulty.
    pub fn wedge_work(&self) -> u64 {
        self.edges()
            .map(|(_, u, v)| self.degree(u).min(self.degree(v)) as u64)
            .sum()
    }

    /// Calls `f(w, e_uw, e_vw)` for every common neighbor `w` of the
    /// endpoints of the live edge `e = {u, v}`; i.e., for every triangle on
    /// `e`. Enumeration merge-intersects the two sorted adjacency lists,
    /// switching to binary probes when the degrees are heavily skewed
    /// (hub–leaf edges would otherwise pay for the hub's whole list).
    #[inline]
    pub fn for_each_triangle_on_edge<F>(&self, e: EdgeId, mut f: F)
    where
        F: FnMut(VertexId, EdgeId, EdgeId),
    {
        let (u, v) = self.endpoints(e);
        let (mut a, mut b) = (
            self.adj[u.index()].as_slice(),
            self.adj[v.index()].as_slice(),
        );
        let mut swapped = false;
        if a.len() > b.len() {
            std::mem::swap(&mut a, &mut b);
            swapped = true;
        }
        if a.len() * 16 < b.len() {
            // Skewed: probe the long list for each entry of the short one.
            for &(w, ea) in a {
                if let Ok(i) = b.binary_search_by_key(&w, |&(x, _)| x) {
                    let eb = b[i].1;
                    if swapped {
                        f(w, eb, ea);
                    } else {
                        f(w, ea, eb);
                    }
                }
            }
            return;
        }
        // Balanced: plain sorted merge.
        while let (Some(&(wa, ea)), Some(&(wb, eb))) = (a.first(), b.first()) {
            match wa.cmp(&wb) {
                std::cmp::Ordering::Less => a = &a[1..],
                std::cmp::Ordering::Greater => b = &b[1..],
                std::cmp::Ordering::Equal => {
                    if swapped {
                        f(wa, eb, ea);
                    } else {
                        f(wa, ea, eb);
                    }
                    a = &a[1..];
                    b = &b[1..];
                }
            }
        }
    }

    /// Like [`Self::for_each_triangle_on_edge`] but stops as soon as the
    /// callback returns `false` — for threshold tests that do not need the
    /// full enumeration.
    #[inline]
    pub fn for_each_triangle_on_edge_while<F>(&self, e: EdgeId, mut f: F)
    where
        F: FnMut(VertexId, EdgeId, EdgeId) -> bool,
    {
        let (u, v) = self.endpoints(e);
        let (mut a, mut b) = (
            self.adj[u.index()].as_slice(),
            self.adj[v.index()].as_slice(),
        );
        let mut swapped = false;
        if a.len() > b.len() {
            std::mem::swap(&mut a, &mut b);
            swapped = true;
        }
        if a.len() * 16 < b.len() {
            for &(w, ea) in a {
                if let Ok(i) = b.binary_search_by_key(&w, |&(x, _)| x) {
                    let eb = b[i].1;
                    let go = if swapped { f(w, eb, ea) } else { f(w, ea, eb) };
                    if !go {
                        return;
                    }
                }
            }
            return;
        }
        while let (Some(&(wa, ea)), Some(&(wb, eb))) = (a.first(), b.first()) {
            match wa.cmp(&wb) {
                std::cmp::Ordering::Less => a = &a[1..],
                std::cmp::Ordering::Greater => b = &b[1..],
                std::cmp::Ordering::Equal => {
                    let go = if swapped {
                        f(wa, eb, ea)
                    } else {
                        f(wa, ea, eb)
                    };
                    if !go {
                        return;
                    }
                    a = &a[1..];
                    b = &b[1..];
                }
            }
        }
    }

    /// Number of triangles containing the live edge `e`.
    pub fn triangles_on_edge(&self, e: EdgeId) -> usize {
        let mut n = 0;
        self.for_each_triangle_on_edge(e, |_, _, _| n += 1);
        n
    }

    /// Removes a vertex's incident edges (the vertex itself remains as an
    /// isolated id — ids are dense and never reassigned). Returns the
    /// number of edges removed.
    pub fn isolate_vertex(&mut self, v: VertexId) -> usize {
        let incident: Vec<EdgeId> = self.neighbors(v).map(|(_, e)| e).collect();
        let n = incident.len();
        for e in incident {
            self.remove_edge(e).expect("incident edge must be live");
        }
        n
    }

    /// Rebuilds the graph with contiguous edge ids (dead slots dropped) and
    /// optionally dropping isolated vertices. Returns the new graph plus
    /// the mapping `old edge id → new edge id` (dead slots map to `None`).
    pub fn compact(&self, drop_isolated: bool) -> (Graph, Vec<Option<EdgeId>>) {
        let mut vmap: Vec<Option<VertexId>> = vec![None; self.num_vertices()];
        let mut next_v = 0u32;
        for (v, slot) in vmap.iter_mut().enumerate() {
            let vid = VertexId::from(v);
            if !drop_isolated || self.degree(vid) > 0 {
                *slot = Some(VertexId(next_v));
                next_v += 1;
            }
        }
        let mut g = Graph::with_capacity(next_v as usize, self.num_edges());
        let mut emap = vec![None; self.edge_bound()];
        for (e, u, v) in self.edges() {
            let nu = vmap[u.index()].expect("endpoint kept");
            let nv = vmap[v.index()].expect("endpoint kept");
            let ne = g.add_edge(nu, nv).expect("no duplicates in source");
            emap[e.index()] = Some(ne);
        }
        (g, emap)
    }

    /// Consistency check used by tests and `debug_assert!`s: adjacency
    /// sorted and symmetric, edge slots consistent, counts correct.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = 0usize;
        for (i, slot) in self.edges.iter().enumerate() {
            if let EdgeSlot::Live(u, v) = slot {
                seen += 1;
                if u >= v {
                    return Err(format!("edge {i} endpoints not normalized"));
                }
                let eid = EdgeId::from(i);
                for (a, b) in [(u, v), (v, u)] {
                    let list = &self.adj[a.index()];
                    match list.binary_search_by_key(b, |&(w, _)| w) {
                        Ok(p) if list[p].1 == eid => {}
                        _ => return Err(format!("edge {i} missing from adjacency of {a}")),
                    }
                }
            }
        }
        if seen != self.live_edges {
            return Err(format!(
                "live edge count mismatch: slots say {seen}, counter says {}",
                self.live_edges
            ));
        }
        for (v, list) in self.adj.iter().enumerate() {
            if !list.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(format!("adjacency of v{v} not strictly sorted"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn path(n: u32) -> Graph {
        Graph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edge_bound(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::with_capacity(4, 4);
        let e01 = g.add_edge(VertexId(0), VertexId(1)).unwrap();
        let e12 = g.add_edge(VertexId(2), VertexId(1)).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert_eq!(g.edge_between(VertexId(1), VertexId(2)), Some(e12));
        assert_eq!(g.endpoints(e12), (VertexId(1), VertexId(2)));
        assert_eq!(g.degree(VertexId(1)), 2);
        assert_eq!(g.edge_between(VertexId(0), VertexId(2)), None);
        assert_eq!(
            g.neighbors(VertexId(1)).collect::<Vec<_>>(),
            vec![(VertexId(0), e01), (VertexId(2), e12)]
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = Graph::with_capacity(2, 2);
        assert_eq!(
            g.add_edge(VertexId(0), VertexId(0)),
            Err(GraphError::SelfLoop(VertexId(0)))
        );
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        assert!(matches!(
            g.add_edge(VertexId(1), VertexId(0)),
            Err(GraphError::DuplicateEdge(..))
        ));
        assert_eq!(g.num_edges(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn rejects_unknown_vertices() {
        let mut g = Graph::with_capacity(1, 0);
        assert!(matches!(
            g.add_edge(VertexId(0), VertexId(5)),
            Err(GraphError::UnknownVertex(VertexId(5)))
        ));
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut g = path(4);
        let e = g.edge_between(VertexId(1), VertexId(2)).unwrap();
        g.remove_edge(e).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(VertexId(1), VertexId(2)));
        assert!(!g.is_live(e));
        // The freed slot is reused by the next insertion.
        let e2 = g.add_edge(VertexId(0), VertexId(3)).unwrap();
        assert_eq!(e2, e);
        assert_eq!(g.edge_bound(), 3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_edge_between_and_missing() {
        let mut g = path(3);
        g.remove_edge_between(VertexId(0), VertexId(1)).unwrap();
        assert!(matches!(
            g.remove_edge_between(VertexId(0), VertexId(1)),
            Err(GraphError::MissingEdge(..))
        ));
    }

    #[test]
    fn triangle_enumeration_on_edge() {
        // K4: every edge lies in exactly 2 triangles.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for e in g.edge_ids() {
            assert_eq!(g.triangles_on_edge(e), 2, "edge {e:?}");
        }
        let mut tri: Vec<VertexId> = Vec::new();
        let e01 = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.for_each_triangle_on_edge(e01, |w, euw, evw| {
            tri.push(w);
            assert_eq!(g.endpoints(euw).0.min(g.endpoints(euw).1), VertexId(0));
            assert!(g.is_live(evw));
        });
        assert_eq!(tri, vec![VertexId(2), VertexId(3)]);
    }

    #[test]
    fn from_edges_skips_junk_and_grows() {
        let g = Graph::from_edges(0, [(0, 1), (1, 0), (2, 2), (1, 5)]);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn edges_iterator_yields_normalized_pairs() {
        let g = Graph::from_edges(3, [(2, 1), (1, 0)]);
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 2);
        for (_, u, v) in all {
            assert!(u < v);
        }
    }

    #[test]
    fn wedge_work_counts_min_degrees() {
        let g = path(3); // degrees 1,2,1; each edge min-degree 1
        assert_eq!(g.wedge_work(), 2);
    }

    #[test]
    fn isolate_vertex_removes_incident_edges_only() {
        let mut g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
        let removed = g.isolate_vertex(VertexId(2));
        assert_eq!(removed, 3);
        assert_eq!(g.degree(VertexId(2)), 0);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(3), VertexId(4)));
        g.check_invariants().unwrap();
        assert_eq!(g.isolate_vertex(VertexId(2)), 0);
    }

    #[test]
    fn compact_renumbers_edges_and_drops_isolated() {
        let mut g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (4, 5)]);
        g.remove_edge_between(VertexId(1), VertexId(2)).unwrap();
        g.isolate_vertex(VertexId(4)); // 4 and 5 become isolated

        let (kept, emap) = g.compact(false);
        assert_eq!(kept.num_vertices(), 6);
        assert_eq!(kept.num_edges(), 2);
        // Edge ids are contiguous and mapped correctly.
        for (e, u, v) in g.edges() {
            let ne = emap[e.index()].unwrap();
            assert_eq!(kept.endpoints(ne), (u, v));
        }

        let (dense, _) = g.compact(true);
        assert_eq!(dense.num_vertices(), 4); // 0,1,2,3 keep degree > 0
        assert_eq!(dense.num_edges(), 2);
        dense.check_invariants().unwrap();
    }

    #[test]
    fn from_parts_roundtrips_through_raw_parts() {
        let mut g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]);
        g.remove_edge_between(VertexId(2), VertexId(3)).unwrap();
        let adj: Vec<_> = (0..g.num_vertices()).map(|v| g.adj[v].clone()).collect();
        let slots: Vec<_> = (0..g.edge_bound())
            .map(|i| g.endpoints_checked(EdgeId::from(i)))
            .collect();
        let rebuilt = Graph::from_parts(adj, slots).unwrap();
        rebuilt.check_invariants().unwrap();
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        assert_eq!(rebuilt.edge_bound(), g.edge_bound());
        for (e, u, v) in g.edges() {
            assert_eq!(rebuilt.endpoints_checked(e), Some((u, v)));
        }
        // The freed slot is the head of the rebuilt free list.
        let dead = g
            .edge_between(VertexId(2), VertexId(3))
            .unwrap_or(EdgeId(3));
        let mut rebuilt = rebuilt;
        let e2 = rebuilt.add_edge(VertexId(0), VertexId(5)).unwrap();
        assert_eq!(e2, dead);
    }

    #[test]
    fn from_parts_rejects_broken_inputs() {
        // Unsorted adjacency.
        let adj = vec![
            vec![(VertexId(2), EdgeId(1)), (VertexId(1), EdgeId(0))],
            vec![(VertexId(0), EdgeId(0))],
            vec![(VertexId(0), EdgeId(1))],
        ];
        let slots = vec![
            Some((VertexId(0), VertexId(1))),
            Some((VertexId(0), VertexId(2))),
        ];
        assert!(Graph::from_parts(adj, slots.clone()).is_err());
        // Missing symmetric entry.
        let adj = vec![
            vec![(VertexId(1), EdgeId(0)), (VertexId(2), EdgeId(1))],
            vec![(VertexId(0), EdgeId(0))],
            vec![],
        ];
        assert!(Graph::from_parts(adj, slots.clone()).is_err());
        // Extra entry referencing a dead slot.
        let adj = vec![
            vec![(VertexId(1), EdgeId(0)), (VertexId(2), EdgeId(1))],
            vec![(VertexId(0), EdgeId(0)), (VertexId(2), EdgeId(2))],
            vec![(VertexId(0), EdgeId(1)), (VertexId(1), EdgeId(2))],
        ];
        assert!(Graph::from_parts(adj, slots.clone()).is_err());
        // Non-normalized slot endpoints.
        let adj = vec![
            vec![(VertexId(1), EdgeId(0))],
            vec![(VertexId(0), EdgeId(0))],
        ];
        assert!(Graph::from_parts(adj, vec![Some((VertexId(1), VertexId(0)))]).is_err());
        // Endpoint out of vertex range.
        let adj = vec![vec![], vec![]];
        assert!(Graph::from_parts(adj, vec![Some((VertexId(1), VertexId(7)))]).is_err());
    }

    #[test]
    fn churn_preserves_invariants() {
        let mut g = Graph::with_capacity(10, 0);
        // Deterministic add/remove churn.
        for round in 0u32..5 {
            for i in 0..10u32 {
                for j in (i + 1)..10 {
                    if (i + j + round) % 3 == 0 {
                        let _ = g.try_add_edge(VertexId(i), VertexId(j));
                    }
                }
            }
            let victims: Vec<EdgeId> = g.edge_ids().step_by(2).collect();
            for e in victims {
                g.remove_edge(e).unwrap();
            }
            g.check_invariants().unwrap();
        }
    }
}
