//! # tkc-graph — graph substrate for the Triangle K-Core suite
//!
//! A dynamic undirected simple graph with **stable edge identifiers**,
//! sorted-adjacency triangle enumeration, classic generators and edge-list
//! I/O. This is the foundation every other crate in the workspace builds
//! on; see the workspace `DESIGN.md` for how it maps onto the ICDE 2012
//! Triangle K-Core paper.
//!
//! ## Quick tour
//!
//! ```
//! use tkc_graph::{generators, triangles, Graph, VertexId};
//!
//! // A scale-free, highly-clustered graph like the paper's co-authorship data.
//! let g = generators::holme_kim(200, 3, 0.7, 42);
//! let tri = triangles::triangle_count(&g);
//! assert!(tri > 0);
//!
//! // Dynamic edits keep edge ids stable.
//! let mut g = Graph::from_edges(3, [(0, 1), (1, 2)]);
//! let e = g.add_edge(VertexId(0), VertexId(2)).unwrap();
//! assert_eq!(g.triangles_on_edge(e), 1);
//! ```

// Graph-substrate kernels (CSR, triangles, cliques) index with
// structurally-bounded ids; the tkc-analyze panic-surface lint audits the
// non-kernel files of this crate individually. See DESIGN.md §11.
#![allow(clippy::indexing_slicing, clippy::expect_used)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjacency;
pub mod cliques;
pub mod components;
pub mod csr;
pub mod error;
pub mod generators;
pub mod generators_ext;
pub mod hash;
pub mod io;
pub mod parallel;
pub mod peel_csr;
pub mod pool;
pub mod triangles;

mod graph;
mod ids;

pub use adjacency::AdjacencySource;
pub use csr::CsrGraph;
pub use error::{GraphError, ParseError};
pub use graph::Graph;
pub use hash::{FxHashMap, FxHashSet};
pub use ids::{EdgeId, VertexId};
pub use pool::WorkerPool;
