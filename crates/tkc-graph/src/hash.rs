//! A small FxHash-style hasher for integer-keyed maps.
//!
//! The decomposition and maintenance algorithms key hash maps almost
//! exclusively by `u32`/`u64` identifiers. The standard library's SipHash is
//! collision-resistant but slow for such keys; the multiply-rotate scheme
//! used by rustc (FxHash) is the established fast alternative. Hand-rolling
//! it here (~40 lines) avoids pulling an extra dependency into the workspace.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for integer-like keys.
///
/// Not DoS-resistant; only use for internal maps keyed by ids the program
/// itself created.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            // analyze: allow(panic-surface): chunks(8) yields chunks of at most 8 bytes
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(12345), h(12345));
        assert_ne!(h(12345), h(12346));
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Same padded word; equality here documents the chunking behaviour.
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[3, 2, 1]);
        assert_ne!(a.finish(), c.finish());
    }
}
