//! Error types for graph construction and I/O.

use std::fmt;

use crate::ids::VertexId;

/// Errors raised by mutating operations on [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint does not exist in the graph.
    UnknownVertex(VertexId),
    /// Self loops are not representable (a triangle needs three distinct
    /// vertices, so the whole suite is defined on simple graphs).
    SelfLoop(VertexId),
    /// The edge already exists (simple graph, no parallel edges).
    DuplicateEdge(VertexId, VertexId),
    /// The edge to remove does not exist.
    MissingEdge(VertexId, VertexId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "vertex {v} does not exist"),
            GraphError::SelfLoop(v) => write!(f, "self loop on vertex {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Errors raised while parsing an edge-list file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment, blank, nor `u v` pair.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        content: String,
    },
    /// A vertex id that does not fit in `u32`.
    VertexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        value: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, content } => {
                write!(f, "malformed edge list line {line}: {content:?}")
            }
            ParseError::VertexOutOfRange { line, value } => {
                write!(f, "vertex id out of range on line {line}: {value:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::DuplicateEdge(VertexId(1), VertexId(2));
        assert!(e.to_string().contains("already exists"));
        let e = GraphError::SelfLoop(VertexId(3));
        assert!(e.to_string().contains("self loop"));
        let e = ParseError::Malformed {
            line: 4,
            content: "x y z".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }
}
