//! Exact maximal clique enumeration: Bron–Kerbosch with pivoting over a
//! degeneracy ordering (Eppstein–Löffler–Strash). Exponential in the worst
//! case but near-linear on the sparse graphs of this suite; used as ground
//! truth for the κ+2 clique proxy and by the CSV comparisons.

use crate::graph::Graph;
use crate::ids::VertexId;

/// Calls `f` once for every maximal clique (vertices sorted ascending).
/// `limit` caps the number of cliques reported (0 = unlimited); returns
/// `true` when enumeration completed, `false` when the cap stopped it.
pub fn for_each_maximal_clique<F>(g: &Graph, limit: usize, mut f: F) -> bool
where
    F: FnMut(&[VertexId]),
{
    let n = g.num_vertices();
    if n == 0 {
        return true;
    }
    // Degeneracy order: repeatedly remove the minimum-degree vertex.
    let order = degeneracy_order(g);
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v.index()] = i;
    }

    let mut reported = 0usize;
    let mut r: Vec<VertexId> = Vec::new();
    for &v in &order {
        // P = later neighbors, X = earlier neighbors.
        let mut p: Vec<VertexId> = Vec::new();
        let mut x: Vec<VertexId> = Vec::new();
        for (w, _) in g.neighbors(v) {
            if rank[w.index()] > rank[v.index()] {
                p.push(w);
            } else {
                x.push(w);
            }
        }
        r.push(v);
        if !bk_pivot(g, &mut r, p, x, limit, &mut reported, &mut f) {
            return false;
        }
        r.pop();
    }
    true
}

/// Recursive Bron–Kerbosch with pivot; returns `false` when the report cap
/// was hit.
fn bk_pivot<F>(
    g: &Graph,
    r: &mut Vec<VertexId>,
    p: Vec<VertexId>,
    mut x: Vec<VertexId>,
    limit: usize,
    reported: &mut usize,
    f: &mut F,
) -> bool
where
    F: FnMut(&[VertexId]),
{
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        f(&clique);
        *reported += 1;
        return limit == 0 || *reported < limit;
    }
    // Pivot: vertex of P ∪ X with the most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| g.has_edge(u, w)).count())
        .expect("P or X non-empty past the base case");
    let mut p = p;
    let candidates: Vec<VertexId> = p
        .iter()
        .copied()
        .filter(|&v| !g.has_edge(pivot, v))
        .collect();
    for v in candidates {
        let np: Vec<VertexId> = p.iter().copied().filter(|&w| g.has_edge(v, w)).collect();
        let nx: Vec<VertexId> = x.iter().copied().filter(|&w| g.has_edge(v, w)).collect();
        r.push(v);
        let go = bk_pivot(g, r, np, nx, limit, reported, f);
        r.pop();
        if !go {
            return false;
        }
        p.retain(|&w| w != v);
        x.push(v);
    }
    true
}

/// Vertices in degeneracy order (min-degree-first removal).
pub fn degeneracy_order(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(VertexId::from(v))).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[deg[v]].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut floor = 0usize;
    while order.len() < n {
        while floor < buckets.len() && buckets[floor].is_empty() {
            floor += 1;
        }
        let v = match buckets[floor].pop() {
            Some(v) => v as usize,
            None => continue,
        };
        if removed[v] || deg[v] != floor {
            continue; // stale bucket entry
        }
        removed[v] = true;
        order.push(VertexId::from(v));
        for (w, _) in g.neighbors(VertexId::from(v)) {
            let wi = w.index();
            if !removed[wi] {
                deg[wi] -= 1;
                buckets[deg[wi]].push(w.0);
                if deg[wi] < floor {
                    floor = deg[wi];
                }
            }
        }
    }
    order
}

/// Collects all maximal cliques of size ≥ `min_size` (small graphs only).
pub fn maximal_cliques(g: &Graph, min_size: usize) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    for_each_maximal_clique(g, 0, |c| {
        if c.len() >= min_size {
            out.push(c.to_vec());
        }
    });
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::generators;

    fn naive_maximal_cliques(g: &Graph) -> Vec<Vec<VertexId>> {
        // All subsets check — tiny graphs only.
        let n = g.num_vertices();
        assert!(n <= 16);
        let is_clique = |set: &[VertexId]| {
            set.iter()
                .enumerate()
                .all(|(i, &u)| set[i + 1..].iter().all(|&v| g.has_edge(u, v)))
        };
        let mut cliques = Vec::new();
        for mask in 1u32..(1 << n) {
            let set: Vec<VertexId> = (0..n)
                .filter(|&v| mask & (1 << v) != 0)
                .map(VertexId::from)
                .collect();
            if !is_clique(&set) {
                continue;
            }
            // Maximal: no vertex outside adjacent to all.
            let maximal = (0..n).all(|v| {
                let vv = VertexId::from(v);
                set.contains(&vv) || !set.iter().all(|&u| g.has_edge(u, vv))
            });
            if maximal {
                cliques.push(set);
            }
        }
        cliques.sort();
        cliques
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::gnp(12, 0.35, seed);
            let mut fast = maximal_cliques(&g, 1);
            fast.sort();
            assert_eq!(fast, naive_maximal_cliques(&g), "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_has_one_maximal_clique() {
        let g = generators::complete(7);
        let cliques = maximal_cliques(&g, 1);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 7);
    }

    #[test]
    fn triangle_free_graph_yields_edges() {
        let g = generators::cycle(6);
        let cliques = maximal_cliques(&g, 2);
        assert_eq!(cliques.len(), 6); // each edge is maximal
    }

    #[test]
    fn limit_stops_enumeration() {
        let g = generators::planted_partition(4, 6, 0.9, 0.05, 3);
        let mut seen = 0;
        let done = for_each_maximal_clique(&g, 3, |_| seen += 1);
        assert!(!done);
        assert_eq!(seen, 3);
    }

    #[test]
    fn degeneracy_order_is_a_permutation_with_correct_width() {
        let g = generators::barabasi_albert(80, 3, 2);
        let order = degeneracy_order(&g);
        assert_eq!(order.len(), g.num_vertices());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.num_vertices());
        // Each vertex has at most `degeneracy` later neighbors.
        let degeneracy = crate::generators::complete(1); // placeholder no-op
        let _ = degeneracy;
        let mut rank = vec![0usize; g.num_vertices()];
        for (i, &v) in order.iter().enumerate() {
            rank[v.index()] = i;
        }
        let width = order
            .iter()
            .map(|&v| {
                g.neighbors(v)
                    .filter(|(w, _)| rank[w.index()] > rank[v.index()])
                    .count()
            })
            .max()
            .unwrap();
        assert!(
            width <= 3 + 1,
            "BA(m=3) degeneracy should be ~3, got {width}"
        );
    }

    #[test]
    fn planted_clique_is_a_maximal_clique() {
        let mut g = generators::gnp(40, 0.05, 9);
        let planted = generators::plant_fresh_cliques(&mut g, 1, 6, 2, 4);
        let cliques = maximal_cliques(&g, 6);
        assert!(cliques
            .iter()
            .any(|c| planted[0].iter().all(|v| c.contains(v))));
    }
}
