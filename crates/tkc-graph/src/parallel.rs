//! Multi-threaded triangle counting (scoped `std::thread`, no extra
//! dependencies). Support computation dominates Algorithm 1's cost on
//! large graphs and is embarrassingly parallel per edge.
//!
//! Note the work trade: the sequential [`crate::triangles::edge_supports`]
//! enumerates each triangle once (apex rule) and credits three edges; the
//! parallel version enumerates per edge, touching each triangle three
//! times, but splits across cores. It wins from a handful of threads up —
//! the `ablations` bench records the crossover.

use crate::graph::Graph;
use crate::ids::EdgeId;

/// Per-edge triangle counts, computed with `threads` worker threads
/// (`0` = use available parallelism).
pub fn edge_supports_parallel(g: &Graph, threads: usize) -> Vec<u32> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let ids: Vec<EdgeId> = g.edge_ids().collect();
    if threads <= 1 || ids.len() < 1024 {
        // Not worth spawning below this size.
        return crate::triangles::edge_supports(g);
    }
    let chunk = ids.len().div_ceil(threads);
    let mut sup = vec![0u32; g.edge_bound()];
    let results: Vec<Vec<(EdgeId, u32)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|&e| (e, g.triangles_on_edge(e) as u32))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for part in results {
        for (e, s) in part {
            sup[e.index()] = s;
        }
    }
    sup
}

/// Total triangle count using `threads` workers (`0` = auto). Each
/// triangle is counted at its lexicographically smallest edge.
pub fn triangle_count_parallel(g: &Graph, threads: usize) -> u64 {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let ids: Vec<EdgeId> = g.edge_ids().collect();
    if threads <= 1 || ids.len() < 1024 {
        return crate::triangles::triangle_count(g);
    }
    let chunk = ids.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut n = 0u64;
                    for &e in part {
                        let (u, v) = g.endpoints(e);
                        g.for_each_triangle_on_edge(e, |w, _, _| {
                            if w > u && w > v {
                                n += 1;
                            }
                        });
                    }
                    n
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::generators;
    use crate::triangles::{edge_supports, triangle_count};

    #[test]
    fn parallel_supports_match_sequential() {
        let g = generators::holme_kim(2000, 4, 0.6, 7);
        let seq = edge_supports(&g);
        for threads in [0, 1, 2, 4] {
            let par = edge_supports_parallel(&g, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let g = generators::planted_partition(5, 30, 0.4, 0.02, 3);
        let seq = triangle_count(&g);
        for threads in [0, 2, 3] {
            assert_eq!(triangle_count_parallel(&g, threads), seq);
        }
    }

    #[test]
    fn small_graphs_take_the_sequential_path() {
        let g = generators::complete(6);
        assert_eq!(edge_supports_parallel(&g, 8), edge_supports(&g));
        assert_eq!(triangle_count_parallel(&g, 8), 20);
    }

    #[test]
    fn dead_slots_stay_zero() {
        let mut g = generators::holme_kim(1500, 3, 0.5, 1);
        let victim = g.edge_ids().next().unwrap();
        g.remove_edge(victim).unwrap();
        let par = edge_supports_parallel(&g, 4);
        assert_eq!(par[victim.index()], 0);
    }
}
