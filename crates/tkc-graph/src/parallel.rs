//! Multi-threaded triangle counting and support computation.
//!
//! These entry points keep the original `(g, threads)` signatures but now
//! route through the oriented CSR kernel ([`crate::csr`]) and the shared
//! [`crate::pool::WorkerPool`]. Work trade, updated from the seed: the old
//! parallel path enumerated per *edge*, touching every triangle three times
//! (3× the sequential apex-rule work) and chunked by edge count, so skewed
//! degree sequences stranded one thread with the hubs. The oriented kernel
//! enumerates each triangle exactly once — the parallel path no longer pays
//! any redundancy tax — and chunks by per-vertex intersection-work prefix
//! sums, so speedup is limited only by merge overhead (one `edge_bound`-
//! sized accumulator per chunk, summed at the end).
//!
//! The spawn decision is based on [`Graph::wedge_work`] — the actual
//! triangle-enumeration cost driver — not edge count: a small dense graph
//! (few edges, lots of wedges) parallelizes, while a large sparse one (many
//! edges, no triangles to find) stays on the cheap sequential path.

use crate::graph::Graph;
use crate::pool::resolve_threads;

/// Minimum [`Graph::wedge_work`] before the parallel paths spawn onto the
/// pool. Below this, sequential enumeration finishes in well under the time
/// a job round-trip costs.
pub const PARALLEL_WEDGE_WORK_MIN: u64 = 1 << 14;

/// True when `g` is worth parallelizing at `threads` workers — the
/// wedge-work spawn rule shared by every parallel entry point.
pub fn should_parallelize(g: &Graph, threads: usize) -> bool {
    resolve_threads(threads) > 1 && g.wedge_work() >= PARALLEL_WEDGE_WORK_MIN
}

/// Per-edge triangle counts, computed with `threads` worker threads
/// (`0` = use available parallelism). Bit-identical to
/// [`crate::triangles::edge_supports`].
pub fn edge_supports_parallel(g: &Graph, threads: usize) -> Vec<u32> {
    if !should_parallelize(g, threads) {
        return crate::triangles::edge_supports(g);
    }
    crate::csr::edge_supports_csr_parallel(g, threads)
}

/// Total triangle count using `threads` workers (`0` = auto). Each triangle
/// is counted exactly once by the oriented kernel.
pub fn triangle_count_parallel(g: &Graph, threads: usize) -> u64 {
    if !should_parallelize(g, threads) {
        return crate::triangles::triangle_count(g);
    }
    crate::csr::triangle_count_csr_parallel(g, threads)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::generators;
    use crate::triangles::{edge_supports, triangle_count};

    #[test]
    fn parallel_supports_match_sequential() {
        let g = generators::holme_kim(2000, 4, 0.6, 7);
        assert!(should_parallelize(&g, 2), "test graph must cross cutoff");
        let seq = edge_supports(&g);
        for threads in [0, 1, 2, 4] {
            let par = edge_supports_parallel(&g, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let g = generators::planted_partition(5, 30, 0.4, 0.02, 3);
        let seq = triangle_count(&g);
        for threads in [0, 2, 3] {
            assert_eq!(triangle_count_parallel(&g, threads), seq);
        }
    }

    #[test]
    fn small_graphs_take_the_sequential_path() {
        let g = generators::complete(6);
        assert!(!should_parallelize(&g, 8));
        assert_eq!(edge_supports_parallel(&g, 8), edge_supports(&g));
        assert_eq!(triangle_count_parallel(&g, 8), 20);
    }

    #[test]
    fn cutoff_follows_wedge_work_not_edge_count() {
        // Dense small graph: K40 has only 780 edges (old cutoff: stay
        // sequential) but ~30k wedge checks — parallelize.
        let dense = generators::complete(40);
        assert!(dense.num_edges() < 1024);
        assert!(should_parallelize(&dense, 4));

        // Sparse large graph: a 5000-vertex path has 4999 edges (old
        // cutoff: spawn) but wedge work ≈ m — don't bother.
        let sparse = generators::path(5000);
        assert!(sparse.num_edges() > 1024);
        assert!(!should_parallelize(&sparse, 4));

        // Either way the results agree with the sequential kernels.
        assert_eq!(edge_supports_parallel(&dense, 4), edge_supports(&dense));
        assert_eq!(edge_supports_parallel(&sparse, 4), edge_supports(&sparse));
    }

    #[test]
    fn dead_slots_stay_zero() {
        let mut g = generators::holme_kim(1500, 3, 0.5, 1);
        let victim = g.edge_ids().next().unwrap();
        g.remove_edge(victim).unwrap();
        let par = edge_supports_parallel(&g, 4);
        assert_eq!(par[victim.index()], 0);
        assert_eq!(par, edge_supports(&g));
    }
}
