//! A small reusable worker pool for the parallel triangle kernels.
//!
//! The seed code spawned fresh `std::thread::scope` workers on every call,
//! which costs a thread create/join round-trip per invocation and forces
//! every parallel entry point to reimplement chunking. This pool keeps a
//! fixed set of workers parked on a shared job queue; callers submit a
//! batch of closures and receive the results in submission order. Because
//! jobs are pulled from one queue, submitting more (smaller) jobs than
//! workers gives natural load balancing on top of whatever static split
//! the caller chose.
//!
//! Jobs must be `'static`: share read-only inputs (like
//! [`crate::csr::CsrGraph`]) via `Arc` rather than borrows. This is what
//! lets the threads outlive any single call and be reused.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pool instrumentation handles on the global [`tkc_obs`] registry.
/// Registered once; recording is a few relaxed atomics per *batch* (not
/// per job) and is skipped entirely when
/// [`tkc_obs::kernel_instrumentation_enabled`] is off.
struct PoolMetrics {
    jobs_total: tkc_obs::Counter,
    batches_total: tkc_obs::Counter,
    busy_seconds: tkc_obs::Histogram,
    imbalance: tkc_obs::Gauge,
}

impl PoolMetrics {
    fn get() -> &'static PoolMetrics {
        static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let reg = tkc_obs::MetricsRegistry::global();
            PoolMetrics {
                jobs_total: reg.counter(
                    "tkc_pool_jobs_total",
                    "Jobs executed by the shared worker pool",
                ),
                batches_total: reg.counter(
                    "tkc_pool_batches_total",
                    "run() batches submitted to the worker pool",
                ),
                busy_seconds: reg.histogram_seconds(
                    "tkc_pool_job_seconds",
                    "Per-job busy time on the worker pool",
                ),
                imbalance: reg.gauge(
                    "tkc_pool_batch_imbalance",
                    "Last batch's max/mean per-job busy time (1.0 = perfectly balanced)",
                ),
            }
        })
    }
}

/// A fixed-size pool of worker threads executing submitted closures.
///
/// # Examples
///
/// ```
/// use tkc_graph::pool::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let squares = pool.run((0u64..8).map(|i| move || i * i).collect::<Vec<_>>());
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

/// Resolves a thread-count request: `0` means "use available parallelism".
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (`0` = available parallelism).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = resolve_threads(threads);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("tkc-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    // analyze: allow(panic-surface): failing to spawn workers at startup is fatal by design
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// The process-wide shared pool, sized to available parallelism on
    /// first use. Parallel kernels that take a plain thread-count knob run
    /// on this pool; requests above its size still complete (jobs queue).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Caps a requested worker count at what this pool can actually run
    /// concurrently. Submitting more chunks than workers buys nothing once
    /// the chunks are work-balanced — the extras just queue behind the
    /// busy workers and pay dispatch overhead — and on machines with fewer
    /// cores than the request it is the difference between "parallel path
    /// is a wash" and "parallel path degrades to the sequential kernel"
    /// (the 2-threads-slower-than-1 regression in BENCH_decompose v1).
    pub fn concurrency_cap(&self, threads: usize) -> usize {
        resolve_threads(threads).min(self.threads()).max(1)
    }

    /// Runs one **frontier round**: a batch of jobs that is part of an
    /// iterative level-synchronous algorithm and may be arbitrarily small.
    ///
    /// When the round is worth fanning out (`estimated_work >= floor` and
    /// more than one job), the jobs run on the pool exactly like
    /// [`WorkerPool::run`]. Below the floor — tiny frontiers, cascade
    /// tails — the jobs run inline on the caller's thread, skipping the
    /// channel round-trip that would dominate them. Results come back in
    /// submission order either way, so callers that merge round results
    /// deterministically cannot observe which path ran.
    pub fn run_round<T, F>(&self, jobs: Vec<F>, estimated_work: u64, floor: u64) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if jobs.len() <= 1 || estimated_work < floor {
            jobs.into_iter().map(|job| job()).collect()
        } else {
            self.run(jobs)
        }
    }

    /// Runs every job on the pool and returns their results in submission
    /// order. Blocks until all jobs finish.
    ///
    /// # Panics
    /// Panics if a job panics (the panic is reported, not swallowed).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let n = jobs.len();
        // One relaxed load decides whether this batch is timed; the
        // disabled path carries no timing code at all.
        let instrument = tkc_obs::kernel_instrumentation_enabled();
        let (tx, rx) = channel::<(usize, T, u64)>();
        // analyze: allow(panic-surface): sender is Some until Drop takes it; run() is unreachable after drop
        let sender = self.sender.as_ref().expect("pool sender alive until drop");
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            sender
                .send(Box::new(move || {
                    // Receiver hang-ups (caller gone) are unreachable here
                    // because `run` blocks until every result arrives.
                    if instrument {
                        let start = Instant::now();
                        let value = job();
                        let _ = tx.send((i, value, start.elapsed().as_nanos() as u64));
                    } else {
                        let _ = tx.send((i, job(), 0));
                    }
                }))
                // analyze: allow(panic-surface): workers only exit after the sender is dropped
                .expect("worker threads alive");
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut max_nanos = 0u64;
        let mut sum_nanos = 0u64;
        for _ in 0..n {
            let (i, value, nanos) = rx
                .recv()
                // analyze: allow(panic-surface): a job panic must propagate to the caller, per the documented contract
                .expect("a pool job panicked before returning its result");
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(value);
            }
            if instrument {
                PoolMetrics::get().busy_seconds.record(nanos);
                max_nanos = max_nanos.max(nanos);
                sum_nanos += nanos;
            }
        }
        if instrument && n > 0 {
            let m = PoolMetrics::get();
            m.jobs_total.add(n as u64);
            m.batches_total.inc();
            let mean = sum_nanos as f64 / n as f64;
            if mean > 0.0 {
                m.imbalance.set(max_nanos as f64 / mean);
            }
        }
        // analyze: allow(panic-surface): the recv loop above fills a slot for every index
        out.into_iter()
            .map(|slot| slot.expect("every index delivered exactly once"))
            .collect()
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while waiting for the next job, not while
        // running it, so other workers can pick up queued jobs.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            // A poisoned lock means another worker panicked mid-recv;
            // shut this worker down too.
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // pool dropped its sender: shut down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every parked worker with a recv error.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(3);
        let jobs: Vec<_> = (0..20u64)
            .map(|i| {
                move || {
                    // Stagger finish times so out-of-order completion is
                    // actually exercised.
                    std::thread::sleep(std::time::Duration::from_micros(200 * (20 - i)));
                    i * 2
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..20u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = WorkerPool::new(2);
        for round in 0..5u32 {
            let out = pool.run((0..2).map(|i| move || round + i).collect::<Vec<_>>());
            assert_eq!(out, vec![round, round + 1]);
        }
    }

    #[test]
    fn zero_requests_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(7), 7);
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let pool = WorkerPool::new(1);
        let out = pool.run((0..64usize).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out.len(), 64);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn empty_job_list_is_fine() {
        let pool = WorkerPool::new(2);
        let out: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn batches_record_into_global_registry() {
        let jobs = PoolMetrics::get().jobs_total.clone();
        let before = jobs.get();
        let pool = WorkerPool::new(2);
        let out = pool.run((0..4u64).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out.len(), 4);
        assert!(
            jobs.get() >= before + 4,
            "pool jobs counter must advance by the batch size"
        );
        assert!(PoolMetrics::get().busy_seconds.count() >= 4);
    }

    #[test]
    fn concurrency_cap_never_exceeds_pool_size() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.concurrency_cap(1), 1);
        assert_eq!(pool.concurrency_cap(2), 2);
        assert_eq!(pool.concurrency_cap(64), 2);
        // `0` (auto) resolves before capping and stays >= 1.
        assert!(pool.concurrency_cap(0) >= 1);
        assert!(pool.concurrency_cap(0) <= 2);
    }

    #[test]
    fn run_round_inline_and_pooled_agree() {
        let pool = WorkerPool::new(2);
        let make_jobs = || (0..8u64).map(|i| move || i * 3).collect::<Vec<_>>();
        let expected: Vec<u64> = (0..8).map(|i| i * 3).collect();
        // Below the floor: inline on the caller.
        assert_eq!(pool.run_round(make_jobs(), 10, 1_000), expected);
        // Above the floor: fans out to the pool.
        assert_eq!(pool.run_round(make_jobs(), 10_000, 1_000), expected);
        // Single job always runs inline regardless of claimed work.
        assert_eq!(pool.run_round(vec![|| 7u32], u64::MAX, 0), vec![7]);
    }

    #[test]
    fn global_pool_is_shared_and_alive() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.run(vec![|| 41 + 1]), vec![42]);
    }
}
