//! Plain-text edge-list I/O (the format of the SNAP datasets the paper
//! uses: one `u v` pair per line, `#` comments, blank lines ignored).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::ParseError;
use crate::graph::Graph;

/// Parses an edge list from a reader. Vertices are labelled by their raw
/// ids; the graph is sized to the largest id seen. Duplicate edges and self
/// loops are skipped (SNAP files list both directions).
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, ParseError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_v = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(ParseError::Malformed {
                    line: lineno + 1,
                    content: line.clone(),
                })
            }
        };
        let parse = |s: &str| -> Result<u32, ParseError> {
            s.parse::<u32>().map_err(|_| ParseError::VertexOutOfRange {
                line: lineno + 1,
                value: s.to_string(),
            })
        };
        let (u, v) = (parse(a)?, parse(b)?);
        max_v = max_v.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_v as usize + 1
    };
    Ok(Graph::from_edges(n, edges))
}

/// Reads an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, ParseError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes the graph as an edge list (`u v` per line, normalized `u < v`).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", g.num_vertices(), g.num_edges())?;
    for (_, u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Saves the graph to a file path.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::ids::VertexId;

    #[test]
    fn parse_basic_list() {
        let input = "# comment\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(VertexId(0), VertexId(2)));
    }

    #[test]
    fn parse_skips_duplicates_and_loops() {
        let input = "0 1\n1 0\n1 1\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_rejects_malformed_line() {
        let err = read_edge_list("0 1\njunk\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_non_numeric() {
        let err = read_edge_list("a b\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::VertexOutOfRange { line: 1, .. }));
    }

    #[test]
    fn parse_handles_percent_comments_and_tabs() {
        let g = read_edge_list("% header\n3\t4\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let g = crate::generators::gnp(30, 0.2, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        for (_, u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("tkc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let g = crate::generators::connected_caveman(3, 4);
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        std::fs::remove_file(path).ok();
    }
}
