//! Random and structured graph generators.
//!
//! These provide the synthetic stand-ins for the paper's datasets (DESIGN.md
//! §2): scale-free graphs with tunable clustering (Holme–Kim) for the
//! citation/social networks, planted cliques and partitions for the case
//! studies, and classic G(n,p)/G(n,m)/R-MAT for stress tests. All generators
//! are deterministic given the seed.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;
use crate::ids::VertexId;

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_capacity(n, n * (n - 1) / 2);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            g.add_edge(VertexId(i), VertexId(j))
                .expect("distinct fresh pair");
        }
    }
    g
}

/// Path on `n` vertices.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)))
}

/// Cycle on `n >= 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(VertexId(0), VertexId(n as u32 - 1))
        .expect("cycle-closing edge is new (n >= 3)");
    g
}

/// Star with `n` leaves (vertex 0 is the hub).
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n + 1, (1..=n as u32).map(|i| (0, i)))
}

/// Erdős–Rényi G(n, p).
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, (p * (n * n) as f64 / 2.0) as usize);
    if p <= 0.0 {
        return g;
    }
    if p >= 1.0 {
        return complete(n);
    }
    // Geometric skipping (Batagelj–Brandes): O(n + m) rather than O(n²).
    let lp = (1.0 - p).ln();
    let (mut v, mut w): (i64, i64) = (1, -1);
    let n = n as i64;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / lp).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            g.add_edge(VertexId(w as u32), VertexId(v as u32))
                .expect("gnm retry loop only emits unseen pairs");
        }
    }
    g
}

/// Erdős–Rényi G(n, m): exactly `m` distinct edges chosen uniformly.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "too many edges requested: {m} > {max}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, m);
    while g.num_edges() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            let _ = g.try_add_edge(VertexId(u), VertexId(v));
        }
    }
    g
}

/// Barabási–Albert preferential attachment: each new vertex attaches to `m`
/// existing vertices with probability proportional to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, (n - m) * m);
    // Repeated-endpoints trick: sampling from the flat endpoint list is
    // degree-proportional.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * (n - m) * m);
    // Seed clique of m+1 vertices keeps early degrees nonzero.
    for i in 0..=(m as u32) {
        for j in (i + 1)..=(m as u32) {
            g.add_edge(VertexId(i), VertexId(j))
                .expect("distinct fresh pair");
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (m + 1) as u32..n as u32 {
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            g.add_edge(VertexId(v), VertexId(t))
                .expect("targets are distinct existing vertices");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// Holme–Kim "powerlaw cluster" model: Barabási–Albert plus triad-formation
/// steps with probability `p_triad`, giving a scale-free graph with *high
/// clustering* — the degree/triangle profile of the paper's co-authorship
/// and social datasets.
pub fn holme_kim(n: usize, m: usize, p_triad: f64, seed: u64) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    assert!((0.0..=1.0).contains(&p_triad));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, (n - m) * m);
    let mut endpoints: Vec<u32> = Vec::new();
    for i in 0..=(m as u32) {
        for j in (i + 1)..=(m as u32) {
            g.add_edge(VertexId(i), VertexId(j))
                .expect("distinct fresh pair");
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (m + 1) as u32..n as u32 {
        let mut added: Vec<u32> = Vec::with_capacity(m);
        let mut last_pref: Option<u32> = None;
        while added.len() < m {
            let do_triad = last_pref.is_some() && rng.gen_bool(p_triad);
            let candidate = if do_triad {
                // Triad step: close a triangle with a neighbor of the last
                // preferentially-attached vertex.
                let anchor = VertexId(last_pref.expect("triad step follows a pref step"));
                let deg = g.degree(anchor);
                let (w, _) = g
                    .neighbors(anchor)
                    .nth(rng.gen_range(0..deg))
                    .expect("index drawn below degree");
                w.0
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if candidate == v || added.contains(&candidate) {
                // Fall back to preferential attachment next round.
                last_pref = None;
                continue;
            }
            g.add_edge(VertexId(v), VertexId(candidate))
                .expect("candidate checked as non-neighbor");
            endpoints.push(v);
            endpoints.push(candidate);
            if !do_triad {
                last_pref = Some(candidate);
            }
            added.push(candidate);
        }
    }
    g
}

/// Watts–Strogatz small-world: ring lattice with `k` nearest neighbors per
/// side, each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k >= 1 && n > 2 * k, "need n > 2k");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, n * k);
    let n32 = n as u32;
    for v in 0..n32 {
        for d in 1..=k as u32 {
            let w = (v + d) % n32;
            if rng.gen_bool(beta) {
                // Rewire: pick a random non-duplicate target.
                for _ in 0..32 {
                    let t = rng.gen_range(0..n32);
                    if t != v && g.try_add_edge(VertexId(v), VertexId(t)).is_some() {
                        break;
                    }
                }
            } else {
                let _ = g.try_add_edge(VertexId(v), VertexId(w));
            }
        }
    }
    g
}

/// Planted partition: `groups` communities of `group_size` vertices;
/// within-community edges with probability `p_in`, across with `p_out`.
pub fn planted_partition(
    groups: usize,
    group_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Graph {
    let n = groups * group_size;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, 0);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            let same = (i as usize / group_size) == (j as usize / group_size);
            let p = if same { p_in } else { p_out };
            if p > 0.0 && rng.gen_bool(p) {
                g.add_edge(VertexId(i), VertexId(j))
                    .expect("distinct fresh pair");
            }
        }
    }
    g
}

/// Plants a clique over the given vertices of an existing graph (adds every
/// missing pairwise edge). Returns the number of edges added.
pub fn plant_clique(g: &mut Graph, members: &[VertexId]) -> usize {
    let mut added = 0;
    for (i, &u) in members.iter().enumerate() {
        for &v in &members[i + 1..] {
            if g.try_add_edge(u, v).is_some() {
                added += 1;
            }
        }
    }
    added
}

/// Plants `count` disjoint cliques of size `size` on fresh vertices appended
/// to `g`, optionally wiring each clique to `attach` random existing
/// vertices so the cliques are embedded rather than floating. Returns the
/// member lists.
pub fn plant_fresh_cliques(
    g: &mut Graph,
    count: usize,
    size: usize,
    attach: usize,
    seed: u64,
) -> Vec<Vec<VertexId>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let host = g.num_vertices() as u32;
    let mut all = Vec::with_capacity(count);
    for _ in 0..count {
        let base = g.num_vertices();
        g.add_vertices(size);
        let members: Vec<VertexId> = (base..base + size).map(VertexId::from).collect();
        plant_clique(g, &members);
        if host > 0 {
            for _ in 0..attach {
                let inside = members[rng.gen_range(0..members.len())];
                let outside = VertexId(rng.gen_range(0..host));
                let _ = g.try_add_edge(inside, outside);
            }
        }
        all.push(members);
    }
    all
}

/// R-MAT / Kronecker-style generator (a=0.57, b=c=0.19 by default in
/// callers): produces the skewed degree distributions of web/social graphs.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!(a + b + c <= 1.0 + 1e-9, "probabilities exceed 1");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, m);
    let mut attempts = 0usize;
    while g.num_edges() < m && attempts < 20 * m {
        attempts += 1;
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            let _ = g.try_add_edge(VertexId(u), VertexId(v));
        }
    }
    g
}

/// Connected caveman-style graph: `groups` cliques of `size` vertices in a
/// ring, consecutive cliques joined by one rewired edge.
pub fn connected_caveman(groups: usize, size: usize) -> Graph {
    assert!(groups >= 2 && size >= 2);
    let n = groups * size;
    let mut g = Graph::with_capacity(n, 0);
    for c in 0..groups {
        let members: Vec<VertexId> = (c * size..(c + 1) * size).map(VertexId::from).collect();
        plant_clique(&mut g, &members);
    }
    for c in 0..groups {
        let from = VertexId::from(c * size);
        let to = VertexId::from(((c + 1) % groups) * size + 1);
        let _ = g.try_add_edge(from, to);
    }
    g
}

/// Random degree-preserving rewiring: performs up to `swaps` double-edge
/// swaps. Useful as a null model that destroys triangles but keeps degrees.
pub fn rewire(g: &mut Graph, swaps: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut done = 0;
    let mut guard = 0;
    while done < swaps && guard < 50 * swaps.max(1) {
        guard += 1;
        let edges: Vec<_> = g.edges().collect();
        if edges.len() < 2 {
            break;
        }
        let &(e1, a, b) = edges.choose(&mut rng).expect("edge list non-empty");
        let &(e2, c, d) = edges.choose(&mut rng).expect("edge list non-empty");
        if e1 == e2 {
            continue;
        }
        // Swap to (a,c),(b,d) when simple-graph constraints allow.
        if a != c && b != d && !g.has_edge(a, c) && !g.has_edge(b, d) {
            g.remove_edge(e1).expect("swap candidates are live");
            g.remove_edge(e2).expect("swap candidates are live");
            g.add_edge(a, c).expect("absence checked above");
            g.add_edge(b, d).expect("absence checked above");
            done += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::triangles::triangle_count;

    #[test]
    fn structured_generators_have_expected_counts() {
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 5);
        assert_eq!(star(5).degree(VertexId(0)), 5);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn gnp_density_is_roughly_p() {
        let g = gnp(400, 0.05, 42);
        let possible = 400.0 * 399.0 / 2.0;
        let density = g.num_edges() as f64 / possible;
        assert!((density - 0.05).abs() < 0.01, "density {density}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a: Vec<_> = gnp(50, 0.1, 7).edges().collect();
        let b: Vec<_> = gnp(50, 0.1, 7).edges().collect();
        let c: Vec<_> = gnp(50, 0.1, 8).edges().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(100, 250, 3);
        assert_eq!(g.num_edges(), 250);
        g.check_invariants().unwrap();
    }

    #[test]
    fn ba_has_hub_structure() {
        let g = barabasi_albert(300, 3, 5);
        assert_eq!(g.num_edges(), 6 + (300 - 4) * 3); // K4 seed + m per newcomer
        let max_deg = g.vertex_ids().map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg > 15, "expected a hub, max degree {max_deg}");
    }

    #[test]
    fn holme_kim_clusters_more_than_ba() {
        let hk = holme_kim(500, 4, 0.9, 11);
        let ba = barabasi_albert(500, 4, 11);
        let chk = crate::triangles::global_clustering(&hk);
        let cba = crate::triangles::global_clustering(&ba);
        assert!(
            chk > cba,
            "holme-kim clustering {chk} should exceed BA {cba}"
        );
        hk.check_invariants().unwrap();
    }

    #[test]
    fn watts_strogatz_degree_regularity_at_beta_zero() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        for v in g.vertex_ids() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn planted_partition_blocks_are_denser() {
        let g = planted_partition(4, 20, 0.6, 0.02, 9);
        let mut within = 0usize;
        let mut across = 0usize;
        for (_, u, v) in g.edges() {
            if u.index() / 20 == v.index() / 20 {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > across * 2);
    }

    #[test]
    fn plant_clique_completes_missing_edges() {
        let mut g = path(4);
        let members: Vec<VertexId> = (0u32..4).map(VertexId::from).collect();
        let added = plant_clique(&mut g, &members);
        assert_eq!(added, 3);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn fresh_cliques_are_cliques_and_attached() {
        let mut g = gnp(30, 0.1, 2);
        let planted = plant_fresh_cliques(&mut g, 2, 5, 3, 77);
        assert_eq!(planted.len(), 2);
        for clique in &planted {
            for (i, &u) in clique.iter().enumerate() {
                for &v in &clique[i + 1..] {
                    assert!(g.has_edge(u, v));
                }
            }
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn rmat_is_skewed_and_valid() {
        let g = rmat(8, 8, 0.57, 0.19, 0.19, 4);
        assert!(g.num_edges() > 1000);
        g.check_invariants().unwrap();
    }

    #[test]
    fn caveman_has_dense_cores() {
        let g = connected_caveman(4, 5);
        // Each K5 cave contributes C(5,3)=10 triangles.
        assert!(triangle_count(&g) >= 40);
        let (_, comps) = crate::components::connected_components(&g);
        assert_eq!(comps, 1);
    }

    #[test]
    fn rewire_preserves_degree_sequence() {
        let mut g = connected_caveman(3, 5);
        let before: Vec<usize> = g.vertex_ids().map(|v| g.degree(v)).collect();
        rewire(&mut g, 30, 123);
        let after: Vec<usize> = g.vertex_ids().map(|v| g.degree(v)).collect();
        assert_eq!(before, after);
        g.check_invariants().unwrap();
    }
}
