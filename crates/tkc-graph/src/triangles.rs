//! Whole-graph triangle routines: support vectors, enumeration, counting and
//! clustering statistics.
//!
//! The peeling algorithm (paper §IV-A step 3) needs the *support* of every
//! edge — the number of triangles it participates in. Everything here runs
//! in `O(Σ_e min(deg(u), deg(v)))`, the standard edge-iterator bound.

use crate::graph::Graph;
use crate::ids::{EdgeId, VertexId};

/// A triangle, identified both by its vertices and by its three edge ids.
///
/// `vertices` are sorted ascending; `edges` follow the convention
/// `[e(v0,v1), e(v0,v2), e(v1,v2)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triangle {
    /// The three corners, ascending.
    pub vertices: [VertexId; 3],
    /// The three sides: `[{v0,v1}, {v0,v2}, {v1,v2}]`.
    pub edges: [EdgeId; 3],
}

impl Triangle {
    /// Canonical triangle from an edge `{u, v}` (id `e_uv`) plus the apex
    /// `w` and its connecting edges.
    pub fn from_edge_apex(
        g: &Graph,
        e_uv: EdgeId,
        w: VertexId,
        e_uw: EdgeId,
        e_vw: EdgeId,
    ) -> Self {
        let (u, v) = g.endpoints(e_uv);
        let mut vs = [u, v, w];
        vs.sort_unstable();
        let pick = |a: VertexId, b: VertexId| -> EdgeId {
            // Each of the three ids connects a specific pair; match by
            // endpoints rather than re-querying the graph.
            for &(e, x, y) in &[(e_uv, u, v), (e_uw, u, w), (e_vw, v, w)] {
                if (x == a && y == b) || (x == b && y == a) {
                    return e;
                }
            }
            unreachable!("triangle edges inconsistent")
        };
        Triangle {
            vertices: vs,
            edges: [pick(vs[0], vs[1]), pick(vs[0], vs[2]), pick(vs[1], vs[2])],
        }
    }

    /// The two edges of the triangle other than `e`.
    pub fn other_edges(&self, e: EdgeId) -> (EdgeId, EdgeId) {
        match self.edges.iter().position(|&x| x == e) {
            Some(0) => (self.edges[1], self.edges[2]),
            Some(1) => (self.edges[0], self.edges[2]),
            Some(2) => (self.edges[0], self.edges[1]),
            _ => panic!("edge {e:?} not in triangle"),
        }
    }
}

/// Support (triangle count) of every live edge, indexed by raw edge id.
/// Dead slots read 0.
pub fn edge_supports(g: &Graph) -> Vec<u32> {
    let mut sup = vec![0u32; g.edge_bound()];
    // Count each triangle once via the ordered-apex rule (w greater than
    // both endpoints), then credit all three sides.
    for (e, u, v) in g.edges() {
        g.for_each_triangle_on_edge(e, |w, e_uw, e_vw| {
            if w > u && w > v {
                sup[e.index()] += 1;
                sup[e_uw.index()] += 1;
                sup[e_vw.index()] += 1;
            }
        });
    }
    sup
}

/// Calls `f` once per triangle in the graph.
pub fn for_each_triangle<F>(g: &Graph, mut f: F)
where
    F: FnMut(Triangle),
{
    for (e, u, v) in g.edges() {
        g.for_each_triangle_on_edge(e, |w, e_uw, e_vw| {
            if w > u && w > v {
                f(Triangle::from_edge_apex(g, e, w, e_uw, e_vw));
            }
        });
    }
}

/// Total number of triangles.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut n = 0u64;
    for (e, u, v) in g.edges() {
        g.for_each_triangle_on_edge(e, |w, _, _| {
            if w > u && w > v {
                n += 1;
            }
        });
    }
    n
}

/// Materializes all triangles. Prefer [`for_each_triangle`] in hot paths;
/// this is for tests and small-graph tooling.
pub fn list_triangles(g: &Graph) -> Vec<Triangle> {
    let mut out = Vec::new();
    for_each_triangle(g, |t| out.push(t));
    out
}

/// Global clustering coefficient: `3·triangles / wedges` (0 when there are
/// no wedges). Used by the dataset registry to report workload structure.
pub fn global_clustering(g: &Graph) -> f64 {
    let tri = triangle_count(g) as f64;
    let wedges: u64 = g
        .vertex_ids()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * tri / wedges as f64
    }
}

/// Brute-force O(n³) triangle listing; the oracle for property tests.
pub fn list_triangles_naive(g: &Graph) -> Vec<[VertexId; 3]> {
    let n = g.num_vertices() as u32;
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(VertexId(a), VertexId(b)) {
                continue;
            }
            for c in (b + 1)..n {
                if g.has_edge(VertexId(a), VertexId(c)) && g.has_edge(VertexId(b), VertexId(c)) {
                    out.push([VertexId(a), VertexId(b), VertexId(c)]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn k(n: u32) -> Graph {
        let mut g = Graph::with_capacity(n as usize, 0);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(VertexId(i), VertexId(j)).unwrap();
            }
        }
        g
    }

    #[test]
    fn supports_on_complete_graph() {
        let g = k(5);
        let sup = edge_supports(&g);
        for e in g.edge_ids() {
            assert_eq!(sup[e.index()], 3); // every edge of K5 is in n-2 = 3 triangles
        }
    }

    #[test]
    fn triangle_count_matches_formula() {
        assert_eq!(triangle_count(&k(4)), 4);
        assert_eq!(triangle_count(&k(6)), 20); // C(6,3)
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(triangle_count(&path), 0);
    }

    #[test]
    fn enumeration_matches_naive() {
        // Two overlapping triangles plus a pendant.
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)]);
        let fast: Vec<[VertexId; 3]> = list_triangles(&g).iter().map(|t| t.vertices).collect();
        let naive = list_triangles_naive(&g);
        let mut fast_sorted = fast.clone();
        fast_sorted.sort();
        assert_eq!(fast_sorted, naive);
        assert_eq!(fast.len() as u64, triangle_count(&g));
    }

    #[test]
    fn triangle_edge_bookkeeping() {
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        let ts = list_triangles(&g);
        assert_eq!(ts.len(), 1);
        let t = ts[0];
        assert_eq!(t.vertices, [VertexId(0), VertexId(1), VertexId(2)]);
        // other_edges returns the complement pair.
        let (a, b) = t.other_edges(t.edges[0]);
        assert_eq!([a, b], [t.edges[1], t.edges[2]]);
        let (a, b) = t.other_edges(t.edges[2]);
        assert_eq!([a, b], [t.edges[0], t.edges[1]]);
    }

    #[test]
    #[should_panic(expected = "not in triangle")]
    fn other_edges_rejects_foreign_edge() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]);
        let t = list_triangles(&g)[0];
        let foreign = g.edge_between(VertexId(2), VertexId(3)).unwrap();
        let _ = t.other_edges(foreign);
    }

    #[test]
    fn clustering_bounds() {
        assert!((global_clustering(&k(5)) - 1.0).abs() < 1e-12);
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(global_clustering(&path), 0.0);
        let empty = Graph::new();
        assert_eq!(global_clustering(&empty), 0.0);
    }

    #[test]
    fn supports_ignore_dead_slots() {
        let mut g = k(4);
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.remove_edge(e).unwrap();
        let sup = edge_supports(&g);
        assert_eq!(sup[e.index()], 0);
        // Remaining edges of K4 minus one edge: triangle {1,2,3} and {0,2,3}.
        assert_eq!(triangle_count(&g), 2);
    }
}
