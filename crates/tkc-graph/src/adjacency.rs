//! The read surface shared by CSR backends.
//!
//! Two backends serve batch triangle work: the in-memory [`CsrGraph`]
//! snapshot (rank-oriented out-lists in flat arrays) and tkc-store's paged
//! on-disk reader (full per-vertex neighbor lists decoded from a frozen
//! store file). Both are, structurally, the same thing — a set of
//! adjacency lists whose entries are `(index, edge id)` pairs ascending by
//! index — and the algorithms that consume them (support counting, the
//! out-of-core stratum peel) only need that shape. [`AdjacencySource`]
//! names it, so those consumers can be written once and run against either
//! backend.
//!
//! What the `u32` index *means* is the backend's contract: `CsrGraph`
//! yields destination **ranks** over oriented half-adjacency (each edge
//! appears in exactly one list), the paged reader yields raw **vertex
//! ids** over full adjacency (each edge appears in two lists). Consumers
//! that care — e.g. triangle enumeration, which is exactly-once on
//! oriented lists and three-times on full lists — document which shape
//! they require.
//!
//! Backends may do I/O per list (the paged reader faults pages in), so the
//! accessors are fallible; the in-memory impl never errors.

use std::io;

use crate::csr::CsrGraph;
use crate::ids::EdgeId;

/// A set of adjacency lists of `(index, edge id)` pairs, each list
/// strictly ascending by index. See the module docs for the two backends
/// and what the index means for each.
pub trait AdjacencySource {
    /// Number of adjacency lists (list indices are `0..num_lists()`).
    fn num_lists(&self) -> usize;

    /// Live edge count of the underlying graph.
    fn num_edges(&self) -> usize;

    /// Exclusive upper bound on raw edge ids — the length per-edge state
    /// vectors (supports, κ) must have so every stored id is a valid
    /// index, dead slots included.
    fn edge_bound(&self) -> usize;

    /// Calls `f(index, edge_id)` for each entry of list `list`, ascending
    /// by index. `list` must be `< num_lists()`.
    fn for_each_entry(&self, list: u32, f: &mut dyn FnMut(u32, EdgeId)) -> io::Result<()>;

    /// Collects list `list` into `out` (clearing it first). Backends with
    /// a cheaper bulk path override this.
    fn read_list(&self, list: u32, out: &mut Vec<(u32, EdgeId)>) -> io::Result<()> {
        out.clear();
        self.for_each_entry(list, &mut |idx, eid| out.push((idx, eid)))
    }
}

impl AdjacencySource for CsrGraph {
    fn num_lists(&self) -> usize {
        self.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.num_edges()
    }

    fn edge_bound(&self) -> usize {
        self.edge_bound()
    }

    fn for_each_entry(&self, list: u32, f: &mut dyn FnMut(u32, EdgeId)) -> io::Result<()> {
        for (dst, eid) in self.out_edges(list as usize) {
            f(dst, eid);
        }
        Ok(())
    }
}

/// Merge-intersects two ascending adjacency lists, calling
/// `f(common_index, eid_in_a, eid_in_b)` per shared index. On full
/// per-vertex lists for an edge `{u, v}` this enumerates the triangles on
/// that edge — the primitive the out-of-core peel uses in place of
/// [`crate::graph::Graph::for_each_triangle_on_edge`].
pub fn merge_common(
    a: &[(u32, EdgeId)],
    b: &[(u32, EdgeId)],
    mut f: impl FnMut(u32, EdgeId, EdgeId),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while let (Some(&(xa, ea)), Some(&(xb, eb))) = (a.get(i), b.get(j)) {
        match xa.cmp(&xb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(xa, ea, eb);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::generators;

    #[test]
    fn csr_impl_matches_out_edges() {
        let g = generators::holme_kim(60, 3, 0.6, 7);
        let snap = CsrGraph::freeze(&g);
        assert_eq!(AdjacencySource::num_lists(&snap), snap.num_vertices());
        assert_eq!(AdjacencySource::num_edges(&snap), snap.num_edges());
        assert_eq!(AdjacencySource::edge_bound(&snap), snap.edge_bound());
        let mut via_trait = Vec::new();
        for r in 0..snap.num_vertices() {
            snap.read_list(r as u32, &mut via_trait).unwrap();
            let direct: Vec<_> = snap.out_edges(r).collect();
            assert_eq!(via_trait, direct, "rank {r}");
            assert!(via_trait.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn merge_common_finds_shared_indices() {
        let a = [(1u32, EdgeId(10)), (3, EdgeId(11)), (7, EdgeId(12))];
        let b = [(0u32, EdgeId(20)), (3, EdgeId(21)), (8, EdgeId(22))];
        let mut hits = Vec::new();
        merge_common(&a, &b, |w, ea, eb| hits.push((w, ea, eb)));
        assert_eq!(hits, vec![(3, EdgeId(11), EdgeId(21))]);
        merge_common(&a, &[], |_, _, _| panic!("empty list intersects"));
    }
}
