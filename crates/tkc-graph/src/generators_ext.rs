//! Additional generators: the forest-fire model the paper cites for
//! evolving graphs (Leskovec et al. \[13\]), the general stochastic block
//! model, and random geometric graphs — rounding out the workload families
//! for benchmarks and stress tests.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;
use crate::hash::FxHashSet;
use crate::ids::VertexId;

/// Forest-fire model (Leskovec, Kleinberg, Faloutsos): each new vertex
/// picks an ambassador, links to it, then "burns" recursively through the
/// ambassador's neighborhood with forward probability `p`. Produces
/// shrinking-diameter, densifying graphs with heavy triangle content —
/// the paper's reference model for evolving networks.
pub fn forest_fire(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n >= 2);
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(0, n * 4);
    g.add_vertices(2);
    g.add_edge(VertexId(0), VertexId(1))
        .expect("first edge of a fresh graph");

    for v in 2..n as u32 {
        g.add_vertex();
        let ambassador = VertexId(rng.gen_range(0..v));
        let mut burned: FxHashSet<VertexId> = FxHashSet::default();
        let mut frontier = vec![ambassador];
        burned.insert(ambassador);
        // Cap the burn so a single fire cannot consume the graph.
        let cap = 1 + (v as usize).min(40);
        while let Some(w) = frontier.pop() {
            let _ = g.try_add_edge(VertexId(v), w);
            if burned.len() >= cap {
                continue;
            }
            // Geometric number of forward links from w.
            let mut links: Vec<VertexId> = g
                .neighbors(w)
                .map(|(x, _)| x)
                .filter(|&x| x != VertexId(v) && !burned.contains(&x))
                .collect();
            // Burn each candidate with probability p (bounded-geometric).
            links.retain(|_| rng.gen_bool(p));
            for x in links {
                if burned.insert(x) {
                    frontier.push(x);
                }
            }
        }
    }
    g
}

/// General stochastic block model: arbitrary block sizes and a full
/// probability matrix (`probs[i][j]` = edge probability between blocks i
/// and j; must be symmetric). Returns the graph and each vertex's block.
pub fn stochastic_block_model(sizes: &[usize], probs: &[Vec<f64>], seed: u64) -> (Graph, Vec<u32>) {
    let b = sizes.len();
    assert_eq!(probs.len(), b, "probability matrix arity");
    for row in probs {
        assert_eq!(row.len(), b, "probability matrix must be square");
    }
    let n: usize = sizes.iter().sum();
    let mut block = Vec::with_capacity(n);
    for (i, &s) in sizes.iter().enumerate() {
        block.extend(std::iter::repeat(i as u32).take(s));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, 0);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = probs[block[u] as usize][block[v] as usize];
            if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                g.add_edge(VertexId::from(u), VertexId::from(v))
                    .expect("u < v over fresh pairs");
            }
        }
    }
    (g, block)
}

/// Random geometric graph on the unit square: vertices at uniform points,
/// edges between pairs within `radius`. Naturally high clustering.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let r2 = radius * radius;
    // Grid binning keeps this O(n · neighbors) instead of O(n²) for small r.
    let cells = ((1.0 / radius).floor() as usize).clamp(1, 1 << 10);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        grid[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let mut g = Graph::with_capacity(n, 0);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = (cell_of(x) as isize, cell_of(y) as isize);
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx >= cells as isize || ny >= cells as isize {
                    continue;
                }
                for &j in &grid[ny as usize * cells + nx as usize] {
                    let j = j as usize;
                    if j <= i {
                        continue;
                    }
                    let (qx, qy) = pts[j];
                    if (x - qx) * (x - qx) + (y - qy) * (y - qy) <= r2 {
                        let _ = g.try_add_edge(VertexId::from(i), VertexId::from(j));
                    }
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::triangles::{global_clustering, triangle_count};

    #[test]
    fn forest_fire_densifies_and_triangulates() {
        let g = forest_fire(500, 0.35, 7);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() >= 499, "at least a tree");
        assert!(triangle_count(&g) > 50, "fires close triangles");
        g.check_invariants().unwrap();
    }

    #[test]
    fn forest_fire_burn_probability_controls_density() {
        let cold = forest_fire(400, 0.1, 3);
        let hot = forest_fire(400, 0.5, 3);
        assert!(hot.num_edges() > cold.num_edges());
    }

    #[test]
    fn sbm_respects_block_structure() {
        let sizes = [30, 20, 10];
        let probs = vec![
            vec![0.5, 0.01, 0.01],
            vec![0.01, 0.6, 0.01],
            vec![0.01, 0.01, 0.8],
        ];
        let (g, block) = stochastic_block_model(&sizes, &probs, 5);
        assert_eq!(g.num_vertices(), 60);
        assert_eq!(block.len(), 60);
        let mut within = 0;
        let mut across = 0;
        for (_, u, v) in g.edges() {
            if block[u.index()] == block[v.index()] {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > across * 3, "within {within} across {across}");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn sbm_rejects_ragged_matrix() {
        let _ = stochastic_block_model(&[5, 5], &[vec![0.5, 0.1], vec![0.1]], 1);
    }

    #[test]
    fn geometric_graph_clusters_heavily() {
        let g = random_geometric(600, 0.08, 9);
        assert!(g.num_edges() > 300);
        assert!(
            global_clustering(&g) > 0.4,
            "geometric graphs should exceed 0.4 clustering, got {}",
            global_clustering(&g)
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn geometric_grid_matches_bruteforce() {
        // Small instance: grid-accelerated result equals O(n²) check.
        let n = 120;
        let r = 0.15;
        let g = random_geometric(n, r, 4);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let mut expected = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let (ax, ay) = pts[i];
                let (bx, by) = pts[j];
                if (ax - bx) * (ax - bx) + (ay - by) * (ay - by) <= r * r {
                    expected += 1;
                }
            }
        }
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            forest_fire(100, 0.3, 11).num_edges(),
            forest_fire(100, 0.3, 11).num_edges()
        );
        let (a, _) = stochastic_block_model(&[10, 10], &[vec![0.4, 0.05], vec![0.05, 0.4]], 2);
        let (b, _) = stochastic_block_model(&[10, 10], &[vec![0.4, 0.05], vec![0.05, 0.4]], 2);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
