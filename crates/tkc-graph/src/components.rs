//! Connectivity utilities: vertex components, BFS orders, and the
//! *triangle-connected* edge components used to extract individual Triangle
//! K-Cores (two edges are triangle-connected when a chain of triangles
//! sharing edges joins them).

use crate::graph::Graph;
use crate::ids::{EdgeId, VertexId};

/// Vertex connected components. Returns `(labels, count)` where
/// `labels[v] == usize::MAX` never occurs (isolated vertices get their own
/// component).
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.num_vertices();
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        label[s] = count;
        stack.push(VertexId::from(s));
        while let Some(v) = stack.pop() {
            for (w, _) in g.neighbors(v) {
                if label[w.index()] == usize::MAX {
                    label[w.index()] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (label, count)
}

/// BFS order from `start` (vertices reachable from it, in visit order).
pub fn bfs_order(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (w, _) in g.neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Groups the edges accepted by `keep` into triangle-connected components,
/// where only triangles whose three edges are all kept count as connectors.
/// Kept edges that lie in no kept triangle are omitted entirely (an edge
/// with no triangle is not part of any Triangle K-Core of number ≥ 1).
///
/// This is the extraction primitive for maximum Triangle K-Cores: with
/// `keep = |e| κ(e) >= k` for `k >= 1`, each returned component is one
/// Triangle K-Core of number ≥ `k` (paper Definition 4 / Claim 2).
pub fn triangle_connected_components<F>(g: &Graph, keep: F) -> Vec<Vec<EdgeId>>
where
    F: Fn(EdgeId) -> bool,
{
    let bound = g.edge_bound();
    // usize::MAX = unvisited, usize::MAX - 1 = visited but triangle-free.
    const SKIP: usize = usize::MAX - 1;
    let mut label = vec![usize::MAX; bound];
    let mut comps: Vec<Vec<EdgeId>> = Vec::new();
    let mut stack: Vec<EdgeId> = Vec::new();
    for e in g.edge_ids() {
        if !keep(e) || label[e.index()] != usize::MAX {
            continue;
        }
        // Seed only from edges that have at least one fully-kept triangle.
        let mut has_kept_triangle = false;
        g.for_each_triangle_on_edge(e, |_, e1, e2| {
            has_kept_triangle |= keep(e1) && keep(e2);
        });
        if !has_kept_triangle {
            label[e.index()] = SKIP;
            continue;
        }
        let id = comps.len();
        let mut members = Vec::new();
        label[e.index()] = id;
        stack.push(e);
        while let Some(x) = stack.pop() {
            members.push(x);
            g.for_each_triangle_on_edge(x, |_, e1, e2| {
                if keep(e1) && keep(e2) {
                    for y in [e1, e2] {
                        if label[y.index()] == usize::MAX {
                            label[y.index()] = id;
                            stack.push(y);
                        }
                    }
                }
            });
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps
}

/// The set of vertices spanned by a set of edges (sorted, deduplicated).
pub fn edge_set_vertices(g: &Graph, edges: &[EdgeId]) -> Vec<VertexId> {
    let mut vs: Vec<VertexId> = edges
        .iter()
        .flat_map(|&e| {
            let (u, v) = g.endpoints(e);
            [u, v]
        })
        .collect();
    vs.sort_unstable();
    vs.dedup();
    vs
}

/// Builds the subgraph induced by an edge subset, relabelling vertices to
/// `0..k`. Returns the subgraph plus the mapping `new -> old`.
pub fn edge_subgraph(g: &Graph, edges: &[EdgeId]) -> (Graph, Vec<VertexId>) {
    let vs = edge_set_vertices(g, edges);
    let mut index = crate::hash::FxHashMap::default();
    for (i, &v) in vs.iter().enumerate() {
        index.insert(v, i as u32);
    }
    let mut sub = Graph::with_capacity(vs.len(), edges.len());
    for &e in edges {
        let (u, v) = g.endpoints(e);
        sub.add_edge(VertexId(index[&u]), VertexId(index[&v]))
            .expect("edge subset contains duplicates");
    }
    (sub, vs)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn components_of_disjoint_pieces() {
        // Triangle {0,1,2}, edge {3,4}, isolated 5.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4)]);
        let (label, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(label[0], label[1]);
        assert_eq!(label[1], label[2]);
        assert_eq!(label[3], label[4]);
        assert_ne!(label[0], label[3]);
        assert_ne!(label[5], label[0]);
        assert_ne!(label[5], label[3]);
    }

    #[test]
    fn bfs_visits_reachable_set_in_layers() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (4, 3)]);
        let order = bfs_order(&g, VertexId(0));
        assert_eq!(order[0], VertexId(0));
        assert_eq!(order.len(), 5);
        let pos = |v: u32| order.iter().position(|&x| x == VertexId(v)).unwrap();
        assert!(pos(1) < pos(3));
        assert!(pos(3) < pos(4));
    }

    #[test]
    fn triangle_components_split_on_shared_vertex() {
        // Two triangles sharing only vertex 2: edge sets are triangle-
        // connected within each triangle but not across.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]);
        let comps = triangle_connected_components(&g, |_| true);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 3);
    }

    #[test]
    fn triangle_components_merge_on_shared_edge() {
        // Two triangles sharing edge {1,2}: one component of 5 edges.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let comps = triangle_connected_components(&g, |_| true);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 5);
    }

    #[test]
    fn triangle_components_respect_filter() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let e03 = g.edge_between(VertexId(1), VertexId(3)).unwrap();
        // Excluding one side of the second triangle leaves only the first.
        let comps = triangle_connected_components(&g, |e| e != e03);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
    }

    #[test]
    fn triangle_components_skip_triangle_free_edges() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let comps = triangle_connected_components(&g, |_| true);
        assert!(comps.is_empty());
    }

    #[test]
    fn subgraph_relabels_and_maps_back() {
        let g = Graph::from_edges(6, [(2, 4), (4, 5), (2, 5), (0, 1)]);
        let tri_edges: Vec<EdgeId> = g
            .edges()
            .filter(|&(_, u, _)| u != VertexId(0))
            .map(|(e, _, _)| e)
            .collect();
        let (sub, back) = edge_subgraph(&g, &tri_edges);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(back, vec![VertexId(2), VertexId(4), VertexId(5)]);
        sub.check_invariants().unwrap();
    }
}
