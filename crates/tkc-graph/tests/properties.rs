#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Property tests for the graph substrate: structural invariants under
//! random edit scripts, and triangle enumeration against the O(n³) oracle.

use proptest::prelude::*;
use tkc_graph::components::{connected_components, triangle_connected_components};
use tkc_graph::triangles::{edge_supports, list_triangles, list_triangles_naive, triangle_count};
use tkc_graph::{Graph, VertexId};

/// A compact edit script: each op is add or remove of a vertex pair drawn
/// from a small universe, so scripts collide often and exercise duplicate /
/// missing paths.
#[derive(Debug, Clone)]
enum Op {
    Add(u32, u32),
    Remove(u32, u32),
}

fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    (0..n, 0..n, any::<bool>())
        .prop_map(|(a, b, add)| if add { Op::Add(a, b) } else { Op::Remove(a, b) })
}

fn apply(g: &mut Graph, op: &Op) {
    match *op {
        Op::Add(a, b) => {
            if a != b {
                let _ = g.try_add_edge(VertexId(a), VertexId(b));
            }
        }
        Op::Remove(a, b) => {
            let _ = g.remove_edge_between(VertexId(a), VertexId(b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_edit_scripts(ops in proptest::collection::vec(op_strategy(12), 0..120)) {
        let mut g = Graph::with_capacity(12, 0);
        for op in &ops {
            apply(&mut g, op);
        }
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn triangle_enumeration_matches_naive(ops in proptest::collection::vec(op_strategy(10), 0..80)) {
        let mut g = Graph::with_capacity(10, 0);
        for op in &ops {
            apply(&mut g, op);
        }
        let mut fast: Vec<[VertexId; 3]> = list_triangles(&g).iter().map(|t| t.vertices).collect();
        fast.sort();
        prop_assert_eq!(fast, list_triangles_naive(&g));
    }

    #[test]
    fn supports_sum_to_three_times_triangles(ops in proptest::collection::vec(op_strategy(10), 0..80)) {
        let mut g = Graph::with_capacity(10, 0);
        for op in &ops {
            apply(&mut g, op);
        }
        let sup = edge_supports(&g);
        let total: u64 = sup.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(total, 3 * triangle_count(&g));
        // Per-edge supports must agree with direct per-edge enumeration.
        for e in g.edge_ids() {
            prop_assert_eq!(sup[e.index()] as usize, g.triangles_on_edge(e));
        }
    }

    #[test]
    fn components_partition_vertices(ops in proptest::collection::vec(op_strategy(14), 0..100)) {
        let mut g = Graph::with_capacity(14, 0);
        for op in &ops {
            apply(&mut g, op);
        }
        let (labels, count) = connected_components(&g);
        prop_assert_eq!(labels.len(), g.num_vertices());
        // Labels are contiguous 0..count.
        let mut seen = vec![false; count];
        for &l in &labels {
            prop_assert!(l < count);
            seen[l] = true;
        }
        prop_assert!(seen.into_iter().all(|x| x));
        // Edges never span components.
        for (_, u, v) in g.edges() {
            prop_assert_eq!(labels[u.index()], labels[v.index()]);
        }
    }

    #[test]
    fn triangle_components_cover_exactly_triangle_edges(ops in proptest::collection::vec(op_strategy(10), 0..80)) {
        let mut g = Graph::with_capacity(10, 0);
        for op in &ops {
            apply(&mut g, op);
        }
        let comps = triangle_connected_components(&g, |_| true);
        let mut covered = std::collections::HashSet::new();
        for comp in &comps {
            for &e in comp {
                prop_assert!(covered.insert(e), "edge in two components");
            }
        }
        for e in g.edge_ids() {
            let in_triangle = g.triangles_on_edge(e) > 0;
            prop_assert_eq!(covered.contains(&e), in_triangle);
        }
    }
}
