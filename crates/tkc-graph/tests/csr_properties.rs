#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Property tests for the oriented CSR snapshot kernel: supports and
//! triangle counts must be bit-identical to the sequential hash-based
//! kernels on random graphs — including graphs with removed edges (dead
//! slots) — and freezing must round-trip edge ids exactly.

use proptest::prelude::*;
use tkc_graph::csr::{edge_supports_csr, edge_supports_csr_parallel, triangle_count_csr, CsrGraph};
use tkc_graph::triangles::{edge_supports, triangle_count};
use tkc_graph::{generators, EdgeId, Graph};

/// Deterministically removes roughly `1/keep_mod` of the live edges so the
/// edge-id space contains dead slots (and the free list gets exercised).
fn churn(g: &mut Graph, keep_mod: usize) {
    let victims: Vec<EdgeId> = g.edge_ids().step_by(keep_mod.max(2)).collect();
    for e in victims {
        g.remove_edge(e).unwrap();
    }
}

fn assert_kernels_agree(g: &Graph, label: &str) {
    let hash = edge_supports(g);
    let snap = CsrGraph::freeze(g);
    snap.check_invariants(g)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(snap.edge_supports(), hash, "{label}: csr seq supports");
    assert_eq!(edge_supports_csr(g), hash, "{label}: csr convenience fn");
    for threads in [2, 5] {
        assert_eq!(
            edge_supports_csr_parallel(g, threads),
            hash,
            "{label}: csr parallel supports ({threads} threads)"
        );
    }
    assert_eq!(
        triangle_count_csr(g),
        triangle_count(g),
        "{label}: triangle count"
    );
    // The support identity 3·|triangles| = Σ_e support(e) ties the two
    // outputs to each other, not just to the oracle.
    let total: u64 = hash.iter().map(|&s| u64::from(s)).sum();
    assert_eq!(total, 3 * triangle_count(g), "{label}: handshake identity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn holme_kim_supports_match(n in 20usize..120, m in 2usize..4, seed in 0u64..1000) {
        let mut g = generators::holme_kim(n, m, 0.6, seed);
        assert_kernels_agree(&g, "holme_kim live");
        churn(&mut g, 3);
        assert_kernels_agree(&g, "holme_kim churned");
    }

    #[test]
    fn planted_partition_supports_match(groups in 2usize..5, size in 4usize..12, seed in 0u64..1000) {
        let mut g = generators::planted_partition(groups, size, 0.7, 0.08, seed);
        assert_kernels_agree(&g, "planted_partition live");
        churn(&mut g, 4);
        assert_kernels_agree(&g, "planted_partition churned");
    }

    #[test]
    fn complete_graph_supports_match(n in 3usize..24) {
        let mut g = generators::complete(n);
        assert_kernels_agree(&g, "complete live");
        churn(&mut g, 2);
        assert_kernels_agree(&g, "complete churned");
    }

    #[test]
    fn freeze_roundtrips_edge_ids(n in 10usize..60, p in 0.05f64..0.4, seed in 0u64..1000) {
        let mut g = generators::gnp(n, p, seed);
        churn(&mut g, 5);
        let snap = CsrGraph::freeze(&g);
        prop_assert_eq!(snap.num_edges(), g.num_edges());
        prop_assert_eq!(snap.edge_bound(), g.edge_bound());
        // Every oriented entry maps back to a live edge whose endpoints
        // are exactly the two ranks it connects; every live edge appears
        // exactly once.
        let mut seen = vec![0u32; g.edge_bound()];
        for r in 0..snap.num_vertices() {
            for (dst, e) in snap.out_edges(r) {
                let (u, v) = g.endpoints_checked(e).expect("captured id must be live");
                let (a, b) = (snap.vertex_of_rank(r), snap.vertex_of_rank(dst as usize));
                prop_assert!((u == a && v == b) || (u == b && v == a));
                seen[e.index()] += 1;
            }
        }
        for e in g.edge_ids() {
            prop_assert_eq!(seen[e.index()], 1);
        }
        prop_assert!(seen.iter().map(|&c| c as usize).sum::<usize>() == g.num_edges());
    }
}
