#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Integration: the static pipeline across crates — substrate → Algorithm 1
//! → extraction, on registry datasets and structured graphs.

use triangle_kcore::core::reference::{is_triangle_kcore, naive_kappa};
use triangle_kcore::prelude::*;

#[test]
fn full_pipeline_on_ppi_standin() {
    let g = triangle_kcore::datasets::build(triangle_kcore::datasets::DatasetId::Ppi, 0.3, 1);
    let d = triangle_kcore_decomposition(&g);
    assert!(
        d.max_kappa() >= 2,
        "PPI stand-in should have dense complexes"
    );

    // Every level set satisfies Definition 3 and the hierarchy nests.
    let hierarchy = core_hierarchy(&g, &d);
    assert_eq!(hierarchy.len(), d.max_kappa() as usize);
    for (i, level) in hierarchy.iter().enumerate() {
        for core in level {
            assert!(is_triangle_kcore(&g, &core.edges, i as u32 + 1));
        }
    }

    // The processing order is a valid peel order: non-decreasing κ.
    let ks: Vec<u32> = d.order().iter().map(|&e| d.kappa(e)).collect();
    assert!(ks.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn stored_and_streaming_agree_on_every_registry_dataset() {
    for id in [
        triangle_kcore::datasets::DatasetId::Synthetic,
        triangle_kcore::datasets::DatasetId::Stocks,
        triangle_kcore::datasets::DatasetId::Dblp,
    ] {
        let g = triangle_kcore::datasets::build(id, 1.0, 3);
        let a = triangle_kcore_decomposition(&g);
        let b = triangle_kcore_decomposition_stored(&g);
        assert_eq!(a.kappa_slice(), b.kappa_slice(), "{:?}", id);
    }
}

#[test]
fn naive_oracle_agrees_on_synthetic_registry_graph() {
    let g = triangle_kcore::datasets::build(triangle_kcore::datasets::DatasetId::Synthetic, 1.0, 9);
    let naive = naive_kappa(&g);
    let fast = triangle_kcore_decomposition(&g);
    for e in g.edge_ids() {
        assert_eq!(naive[e.index()], fast.kappa(e));
    }
}

#[test]
fn kappa_is_invariant_under_vertex_relabeling() {
    // Decompose, permute vertex ids, decompose again: κ multiset matches.
    let g = generators::planted_partition(3, 10, 0.6, 0.1, 4);
    let d1 = triangle_kcore_decomposition(&g);
    let n = g.num_vertices() as u32;
    let perm: Vec<u32> = (0..n).map(|v| (v * 7 + 3) % n).collect();
    let mut h = Graph::with_capacity(n as usize, g.num_edges());
    let mut expected: Vec<u32> = Vec::new();
    let mut relabeled: Vec<(u32, u32)> = Vec::new();
    for (e, u, v) in g.edges() {
        expected.push(d1.kappa(e));
        relabeled.push((perm[u.index()], perm[v.index()]));
    }
    for &(u, v) in &relabeled {
        h.add_edge(VertexId(u), VertexId(v)).unwrap();
    }
    let d2 = triangle_kcore_decomposition(&h);
    for (i, &(u, v)) in relabeled.iter().enumerate() {
        let e = h.edge_between(VertexId(u), VertexId(v)).unwrap();
        assert_eq!(d2.kappa(e), expected[i]);
    }
}

#[test]
fn io_roundtrip_preserves_decomposition() {
    let g = generators::connected_caveman(4, 5);
    let d1 = triangle_kcore_decomposition(&g);
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = io::read_edge_list(buf.as_slice()).unwrap();
    let d2 = triangle_kcore_decomposition(&g2);
    // Same edges, same κ per (u, v) pair.
    for (e, u, v) in g.edges() {
        let e2 = g2.edge_between(u, v).unwrap();
        assert_eq!(d1.kappa(e), d2.kappa(e2));
    }
}

#[test]
fn clique_surfacing_across_noise_levels() {
    for (noise, seed) in [(0.01, 1u64), (0.05, 2), (0.1, 3)] {
        let mut g = generators::gnp(80, noise, seed);
        let planted = generators::plant_fresh_cliques(&mut g, 1, 7, 2, seed);
        let d = triangle_kcore_decomposition(&g);
        let found = densest_cliques(&g, &d, 1);
        assert!(
            found
                .iter()
                .any(|c| planted[0].iter().all(|v| c.vertices.contains(v))),
            "noise {noise}: planted 7-clique lost"
        );
    }
}
