#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Integration: the dataset registry feeds every algorithm without
//! surprises — sizes track Table I, builds are deterministic, scenarios
//! compose with the pattern and dual-view layers.

use triangle_kcore::datasets::{build, build_default, DatasetId};
use triangle_kcore::prelude::*;

#[test]
fn all_ten_datasets_build_at_smoke_scale() {
    for id in DatasetId::all() {
        let info = id.info();
        let g = build(id, info.default_scale * 0.01, 1);
        assert!(g.num_edges() >= 60, "{}: too few edges", info.name);
        g.check_invariants().unwrap();
        // Everything downstream must run on every dataset.
        let d = triangle_kcore_decomposition(&g);
        let plot = kappa_density_plot(&g, &d);
        assert_eq!(plot.len(), g.num_vertices());
    }
}

#[test]
fn small_datasets_build_at_paper_scale() {
    let stocks = build_default(DatasetId::Stocks, 1);
    assert_eq!(stocks.num_vertices(), 275);
    assert_eq!(stocks.num_edges(), 1680);

    let synthetic = build_default(DatasetId::Synthetic, 1);
    assert_eq!(synthetic.num_vertices(), 60);
    let ratio = synthetic.num_edges() as f64 / 308.0;
    assert!(
        (0.7..=1.3).contains(&ratio),
        "synthetic edges {}",
        synthetic.num_edges()
    );
}

#[test]
fn determinism_across_calls_and_scales() {
    for id in [DatasetId::Ppi, DatasetId::Wiki] {
        let a = build(id, 0.02, 77);
        let b = build(id, 0.02, 77);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb, "{:?} not deterministic", id);
    }
}

#[test]
fn churn_script_is_applicable_and_reversible() {
    let g = build(DatasetId::Dblp, 0.3, 5);
    let (dels, ins) = triangle_kcore::datasets::scenarios::churn_script(&g, 0.02, 9);
    let mut m = DynamicTriangleKCore::new(g.clone());
    let ops: Vec<BatchOp> = dels
        .iter()
        .map(|&(u, v)| BatchOp::Remove(u, v))
        .chain(ins.iter().map(|&(u, v)| BatchOp::Insert(u, v)))
        .collect();
    m.apply_batch(ops);
    // Undo everything: the κ values must return to the originals.
    let undo: Vec<BatchOp> = ins
        .iter()
        .map(|&(u, v)| BatchOp::Remove(u, v))
        .chain(dels.iter().map(|&(u, v)| BatchOp::Insert(u, v)))
        .collect();
    m.apply_batch(undo);
    let original = triangle_kcore_decomposition(&g);
    for (_, u, v) in g.edges() {
        let e_now = m.graph().edge_between(u, v).expect("edge restored");
        let e_was = g.edge_between(u, v).unwrap();
        assert_eq!(m.kappa(e_now), original.kappa(e_was));
    }
}

#[test]
fn ppi_case_study_reproduces_figure_7_peaks() {
    let (g, [c1, c2, c3]) = triangle_kcore::datasets::ppi::ppi_case_study(42);
    let d = triangle_kcore_decomposition(&g);
    let peak = |members: &[VertexId]| {
        members
            .iter()
            .flat_map(|&u| members.iter().map(move |&v| (u, v)))
            .filter(|(u, v)| u < v)
            .filter_map(|(u, v)| g.edge_between(u, v))
            .map(|e| d.kappa(e) + 2)
            .max()
            .unwrap()
    };
    assert_eq!(peak(&c1), 8);
    assert_eq!(peak(&c2), 10);
    assert_eq!(peak(&c3), 9, "missing edge must cost exactly one level");
}

#[test]
fn collaboration_snapshots_have_paperlike_shape() {
    let g = triangle_kcore::datasets::collaboration::collaboration_snapshot(2000, 1200, 3);
    // Team cliques mean the clustering is far above random.
    let clustering = triangle_kcore::graph::triangles::global_clustering(&g);
    // (Hub authors contribute many open wedges, so the global coefficient
    // sits well below the per-team density; random G(n,m) at this size
    // would be < 0.01.)
    assert!(clustering > 0.1, "clustering {clustering}");
    // And κ reflects the biggest team (up to 6 authors → κ = 4).
    let d = triangle_kcore_decomposition(&g);
    assert!(d.max_kappa() >= 3);
}
