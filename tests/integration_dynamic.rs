#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Integration: dynamic maintenance against the static algorithm on
//! dataset-scale graphs and full churn scenarios (the Table III protocol
//! at test scale).

use triangle_kcore::datasets::scenarios::churn_script;
use triangle_kcore::datasets::DatasetId;
use triangle_kcore::prelude::*;

fn assert_matches_recompute(m: &DynamicTriangleKCore) {
    let fresh = triangle_kcore_decomposition(m.graph());
    for e in m.graph().edge_ids() {
        assert_eq!(
            m.kappa(e),
            fresh.kappa(e),
            "edge {:?}",
            m.graph().endpoints(e)
        );
    }
}

#[test]
fn one_percent_churn_on_registry_datasets() {
    for (id, scale) in [
        (DatasetId::Stocks, 1.0),
        (DatasetId::Dblp, 0.5),
        (DatasetId::AstroAuthor, 0.05),
    ] {
        let g = triangle_kcore::datasets::build(id, scale, 11);
        let (dels, ins) = churn_script(&g, 0.01, 13);
        let mut m = DynamicTriangleKCore::new(g);
        let ops: Vec<BatchOp> = dels
            .iter()
            .map(|&(u, v)| BatchOp::Remove(u, v))
            .chain(ins.iter().map(|&(u, v)| BatchOp::Insert(u, v)))
            .collect();
        let (ins_done, del_done) = m.apply_batch(ops);
        assert_eq!(ins_done, ins.len());
        assert_eq!(del_done, dels.len());
        assert_matches_recompute(&m);
    }
}

#[test]
fn grow_a_graph_edge_by_edge_from_nothing() {
    // Insert all of a target graph's edges one at a time into an empty
    // maintainer; κ must match the static result at the end (and at a few
    // checkpoints along the way).
    let target = generators::planted_partition(3, 8, 0.7, 0.1, 21);
    let mut m = DynamicTriangleKCore::new(Graph::with_capacity(target.num_vertices(), 0));
    let edges: Vec<_> = target.edges().collect();
    for (i, &(_, u, v)) in edges.iter().enumerate() {
        m.insert_edge(u, v).unwrap();
        if i % 25 == 24 {
            assert_matches_recompute(&m);
        }
    }
    assert_matches_recompute(&m);
    assert_eq!(m.graph().num_edges(), target.num_edges());
}

#[test]
fn shrink_a_graph_edge_by_edge_to_nothing() {
    let g = generators::connected_caveman(3, 6);
    let mut m = DynamicTriangleKCore::new(g);
    while m.graph().num_edges() > 0 {
        let e = m.graph().edge_ids().next().unwrap();
        m.remove_edge(e).unwrap();
        if m.graph().num_edges() % 10 == 0 {
            assert_matches_recompute(&m);
        }
    }
    assert_eq!(m.stats().promotions, 0);
    assert!(m.stats().demotions > 0);
}

#[test]
fn rebuild_equals_maintained_after_mixed_session() {
    // A long mixed session, then a final deep comparison including the
    // extraction layer.
    let g = triangle_kcore::datasets::build(DatasetId::Synthetic, 1.0, 5);
    let mut m = DynamicTriangleKCore::new(g);
    let mut state = 0xdeadbeefu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let n = m.graph().num_vertices() as u32;
    for _ in 0..300 {
        let u = VertexId(next() % n);
        let v = VertexId(next() % n);
        if u == v {
            continue;
        }
        if m.graph().has_edge(u, v) {
            m.remove_edge_between(u, v).unwrap();
        } else {
            m.insert_edge(u, v).unwrap();
        }
    }
    assert_matches_recompute(&m);

    // Extraction built on maintained κ equals extraction on a fresh run.
    let fresh = triangle_kcore_decomposition(m.graph());
    let from_fresh = cores_at_level(m.graph(), &fresh, fresh.max_kappa().max(1));
    if fresh.max_kappa() >= 1 {
        assert!(!from_fresh.is_empty());
    }
}

#[test]
fn dual_view_pipeline_runs_on_wiki_scenario() {
    let (g, adds, _) = triangle_kcore::datasets::scenarios::wiki_dual_view_scenario(0.05, 23);
    let view = dual_view(&g, &adds, 3);
    assert_eq!(view.before.len(), g.num_vertices());
    assert!(!view.markers.is_empty());
    // Markers map every vertex to a valid position in both plots.
    for m in &view.markers {
        assert_eq!(m.before_positions.len(), m.vertices.len());
        for &p in &m.before_positions {
            assert!(p < view.before.len());
        }
        for &p in &m.after_positions {
            assert!(p < view.after.len());
        }
    }
}
