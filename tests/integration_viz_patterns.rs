#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Integration: visualization + pattern layers on top of core results —
//! plots cover all vertices, SVG/TSV artifacts are well-formed, and the
//! case-study scenarios surface their planted structures.

use triangle_kcore::datasets::collaboration::{
    bridge_scenario, new_form_scenario, new_join_scenario,
};
use triangle_kcore::datasets::ppi::ppi_bridge_study;
use triangle_kcore::prelude::*;
use triangle_kcore::viz::dual_view::{marker_table_tsv, render_dual_view};
use triangle_kcore::viz::plot::density_plot_tsv;

#[test]
fn density_plot_covers_graph_and_renders() {
    let g = triangle_kcore::datasets::build(triangle_kcore::datasets::DatasetId::Stocks, 1.0, 3);
    let d = triangle_kcore_decomposition(&g);
    let plot = kappa_density_plot(&g, &d);
    assert_eq!(plot.len(), g.num_vertices());
    assert_eq!(plot.max_value(), d.max_kappa() + 2);

    let svg = render_density_plot(&plot, &PlotStyle::default());
    assert!(svg.starts_with("<svg"));
    assert!(svg.ends_with("</svg>\n"));

    let tsv = density_plot_tsv(&plot);
    assert_eq!(tsv.lines().count(), plot.len() + 1);

    let spark = ascii_sparkline(&plot, 60);
    assert_eq!(spark.chars().count(), 60);
}

#[test]
fn dense_regions_lead_the_plot() {
    // The heaviest plateau must appear before lighter regions within the
    // plotted order (dense-first seeding).
    let mut g = generators::gnp(60, 0.03, 5);
    let planted = generators::plant_fresh_cliques(&mut g, 1, 9, 2, 5);
    let d = triangle_kcore_decomposition(&g);
    let plot = kappa_density_plot(&g, &d);
    // The first 9 plotted vertices are exactly the planted 9-clique.
    let head: std::collections::HashSet<_> = plot.order[..9].iter().copied().collect();
    for v in &planted[0] {
        assert!(
            head.contains(v),
            "clique member not at the head of the plot"
        );
    }
    assert!(plot.values[..9].iter().all(|&x| x == 9));
}

#[test]
fn every_template_scenario_surfaces_its_plant() {
    // New Form.
    let (o, n, plant) = new_form_scenario(800, 500, 6, 41);
    let ag = AttributedGraph::from_snapshots(&o, &n);
    let res = detect_template(&ag, &NewFormClique);
    for (i, &u) in plant.iter().enumerate() {
        for &v in &plant[i + 1..] {
            let e = ag.graph().edge_between(u, v).unwrap();
            assert!(res.co_clique[e.index()] >= 6);
        }
    }

    // Bridge.
    let (o, n, plant) = bridge_scenario(800, 500, 4, 2, 41);
    let ag = AttributedGraph::from_snapshots(&o, &n);
    let res = detect_template(&ag, &BridgeClique);
    for (i, &u) in plant.iter().enumerate() {
        for &v in &plant[i + 1..] {
            let e = ag.graph().edge_between(u, v).unwrap();
            assert!(res.co_clique[e.index()] >= 6, "bridge edge missed");
        }
    }

    // New Join.
    let (o, n, plant) = new_join_scenario(800, 500, 3, 6, 41);
    let ag = AttributedGraph::from_snapshots(&o, &n);
    let res = detect_template(&ag, &NewJoinClique);
    for (i, &u) in plant.iter().enumerate() {
        for &v in &plant[i + 1..] {
            let e = ag.graph().edge_between(u, v).unwrap();
            assert!(res.co_clique[e.index()] >= 9, "new-join edge missed");
        }
    }
}

#[test]
fn pattern_plot_zeroes_everything_without_matches() {
    // Static labeled graph where all labels are equal: no bridge edges, so
    // the bridge pattern plot is flat zero.
    let g = generators::planted_partition(2, 10, 0.7, 0.2, 9);
    let labels = vec![1u32; g.num_vertices()];
    let ag = AttributedGraph::from_vertex_labels(g, &labels);
    let res = detect_template(&ag, &BridgeClique);
    assert_eq!(res.special_edge_count(), 0);
    let plot = density_order(ag.graph(), &res.co_clique);
    assert_eq!(plot.max_value(), 0);
}

#[test]
fn dual_view_artifacts_are_consistent() {
    let (g, labels, _) = ppi_bridge_study(3);
    let _ = labels;
    // Use the bridge-study graph as a base for a small dual view.
    let adds: Vec<(VertexId, VertexId)> = vec![
        (VertexId(0), VertexId(50)),
        (VertexId(1), VertexId(50)),
        (VertexId(0), VertexId(1)),
    ];
    let adds: Vec<_> = adds
        .into_iter()
        .filter(|&(u, v)| !g.has_edge(u, v))
        .collect();
    let view = dual_view(&g, &adds, 2);
    let svg = render_dual_view(&view, 600, 200);
    assert!(svg.contains("plot(a)") && svg.contains("plot(b)"));
    let tsv = marker_table_tsv(&view);
    assert!(tsv.starts_with("marker\t"));
    // Every marker row count matches the vertex counts.
    let rows = tsv.lines().count() - 1;
    let expected: usize = view.markers.iter().map(|m| m.vertices.len()).sum();
    assert_eq!(rows, expected);
}
