#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Integration: the extension layer — persistence, parallel counting,
//! community search, exact clique enumeration and event detection —
//! composed across crates on dataset-scale graphs.

use triangle_kcore::graph::cliques::maximal_cliques;
use triangle_kcore::graph::parallel::{edge_supports_parallel, triangle_count_parallel};
use triangle_kcore::prelude::*;

#[test]
fn decompose_persist_reload_maintain() {
    // Full lifecycle: decompose → save κ → reload → maintain dynamically.
    let g = triangle_kcore::datasets::build(triangle_kcore::datasets::DatasetId::Ppi, 0.2, 4);
    let d = triangle_kcore_decomposition(&g);
    let mut buf = Vec::new();
    write_kappa(&g, &d, &mut buf).unwrap();
    let kappa = read_kappa(&g, buf.as_slice()).unwrap();

    let mut m = DynamicTriangleKCore::from_parts(g, kappa);
    let (dels, ins) = triangle_kcore::datasets::scenarios::churn_script(m.graph(), 0.02, 8);
    let ops: Vec<BatchOp> = dels
        .iter()
        .map(|&(u, v)| BatchOp::Remove(u, v))
        .chain(ins.iter().map(|&(u, v)| BatchOp::Insert(u, v)))
        .collect();
    m.apply_batch(ops);
    let fresh = triangle_kcore_decomposition(m.graph());
    for e in m.graph().edge_ids() {
        assert_eq!(m.kappa(e), fresh.kappa(e));
    }
}

#[test]
fn parallel_counting_matches_sequential_on_datasets() {
    let g = triangle_kcore::datasets::build(triangle_kcore::datasets::DatasetId::Wiki, 0.02, 5);
    let seq = triangle_kcore::graph::triangles::edge_supports(&g);
    assert_eq!(edge_supports_parallel(&g, 4), seq);
    assert_eq!(
        triangle_count_parallel(&g, 4),
        triangle_kcore::graph::triangles::triangle_count(&g)
    );
}

#[test]
fn community_search_tracks_planted_membership() {
    let mut g = generators::gnp(100, 0.03, 7);
    let planted = generators::plant_fresh_cliques(&mut g, 2, 7, 2, 7);
    let d = triangle_kcore_decomposition(&g);
    let member = planted[0][3];
    let comms = communities_of_vertex(&g, &d, member, 5);
    assert_eq!(comms.len(), 1);
    for v in &planted[0] {
        assert!(comms[0].vertices.contains(v));
    }
    // Stats reflect the planted density.
    let stats = kappa_stats(&g, &d);
    assert_eq!(stats.max_kappa, 5);
    assert!(stats.top_level_cores >= 1);
}

#[test]
fn exact_cliques_validate_the_proxy_on_ppi() {
    let g = triangle_kcore::datasets::build(triangle_kcore::datasets::DatasetId::Ppi, 0.15, 2);
    let d = triangle_kcore_decomposition(&g);
    let cliques = maximal_cliques(&g, 4);
    for c in &cliques {
        for (i, &u) in c.iter().enumerate() {
            for &v in &c[i + 1..] {
                let e = g.edge_between(u, v).unwrap();
                assert!(
                    d.kappa(e) + 2 >= c.len() as u32,
                    "proxy below witnessed clique"
                );
            }
        }
    }
    let biggest = cliques.iter().map(|c| c.len()).max().unwrap_or(0) as u32;
    assert!(biggest <= d.max_kappa() + 2);
}

#[test]
fn events_detected_on_collaboration_years() {
    // Two consecutive "years": carried teams continue, replaced teams
    // dissolve, new teams form.
    let (y1, y2) = triangle_kcore::datasets::collaboration::snapshot_pair(600, 350, 0.6, 12);
    let rep = detect_events(&y1, &y2, 2, &EventOptions::default());
    assert!(!rep.old_cores.is_empty());
    assert!(!rep.new_cores.is_empty());
    let mut kinds = [0usize; 4]; // stable-ish, dissolve, form, other
    for e in &rep.events {
        match e {
            Event::Continue { .. } | Event::Grow { .. } | Event::Shrink { .. } => kinds[0] += 1,
            Event::Dissolve { .. } => kinds[1] += 1,
            Event::Form { .. } => kinds[2] += 1,
            _ => kinds[3] += 1,
        }
    }
    assert!(kinds[0] > 0, "carried teams should continue");
    assert!(kinds[1] > 0, "replaced teams should dissolve");
    assert!(kinds[2] > 0, "new teams should form");
}

#[test]
fn subgraph_rendering_of_extracted_cores() {
    let (g, labels, members) = triangle_kcore::datasets::ppi::ppi_bridge_study(6);
    let svg = triangle_kcore::viz::render_structure(
        &g,
        &members,
        |e| {
            let (u, v) = g.endpoints(e);
            labels[u.index()] != labels[v.index()]
        },
        300,
    );
    assert!(svg.contains("#dc2626"), "inter-complex edges highlighted");
    assert_eq!(svg.matches("<circle").count(), members.len());
}
