#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Integration: the baselines against the core on realistic dataset
//! stand-ins — Claim 3 at scale and the CSV/κ+2 relationship the Figure 6
//! comparison rests on.

use triangle_kcore::baselines::csv::{csv_co_clique_sizes, CsvOptions};
use triangle_kcore::baselines::dngraph::{bitridn, is_valid_lambda, tridn};
use triangle_kcore::prelude::*;
use triangle_kcore::viz::ordering::plot_similarity;

#[test]
fn claim3_on_registry_datasets() {
    for (id, scale) in [
        (triangle_kcore::datasets::DatasetId::Synthetic, 1.0),
        (triangle_kcore::datasets::DatasetId::Stocks, 1.0),
        (triangle_kcore::datasets::DatasetId::Ppi, 0.2),
        (triangle_kcore::datasets::DatasetId::AstroAuthor, 0.03),
    ] {
        let g = triangle_kcore::datasets::build(id, scale, 31);
        let d = triangle_kcore_decomposition(&g);
        let a = tridn(&g);
        let b = bitridn(&g);
        for e in g.edge_ids() {
            assert_eq!(a.lambda(e), d.kappa(e), "{:?} tridn", id);
            assert_eq!(b.lambda(e), d.kappa(e), "{:?} bitridn", id);
        }
        assert!(is_valid_lambda(&g, &a.lambda));
        assert!(
            b.sweeps <= a.sweeps,
            "{:?}: bitridn should converge in fewer sweeps",
            id
        );
    }
}

#[test]
fn csv_plot_and_proxy_plot_are_similar_on_clustered_data() {
    let g = triangle_kcore::datasets::build(triangle_kcore::datasets::DatasetId::Dblp, 0.4, 7);
    let d = triangle_kcore_decomposition(&g);
    let mut proxy = vec![0u32; g.edge_bound()];
    for e in g.edge_ids() {
        proxy[e.index()] = d.kappa(e) + 2;
    }
    let csv = csv_co_clique_sizes(&g, &CsvOptions::default());
    assert_eq!(
        csv.budget_exhausted, 0,
        "budget should suffice at this scale"
    );

    // Pointwise: exact co-clique sizes never exceed the proxy.
    for e in g.edge_ids() {
        assert!(csv.co_clique_size(e) <= proxy[e.index()]);
    }

    // Plot-level: the Figure 6 similarity.
    let plot_proxy = density_order(&g, &proxy);
    let plot_csv = density_order(&g, &csv.co_clique);
    let sim = plot_similarity(&plot_csv, &plot_proxy, g.num_vertices());
    assert!(sim > 0.95, "plots diverged: similarity {sim}");
}

#[test]
fn iterative_baselines_do_strictly_more_edge_work() {
    // The computational story behind Table II: sweeps × edges for the
    // iterative methods vs one pass for the peel.
    let g = triangle_kcore::datasets::build(triangle_kcore::datasets::DatasetId::Ppi, 0.3, 3);
    let a = tridn(&g);
    assert!(a.edge_updates as usize >= 2 * g.num_edges());
    let b = bitridn(&g);
    assert!(b.edge_updates >= g.num_edges() as u64);
    assert!(b.edge_updates <= a.edge_updates);
}

#[test]
fn dn_lambda_degrades_gracefully_when_budget_capped_csv_does_not_affect_it() {
    // Orthogonality check: capping CSV's budget changes only CSV's output.
    let g = generators::planted_partition(3, 12, 0.6, 0.05, 2);
    let full = csv_co_clique_sizes(&g, &CsvOptions::default());
    let capped = csv_co_clique_sizes(&g, &CsvOptions { node_budget: 8 });
    assert!(capped.budget_exhausted > 0);
    for e in g.edge_ids() {
        // The capped run returns lower bounds.
        assert!(capped.co_clique_size(e) <= full.co_clique_size(e));
    }
    let est = bitridn(&g);
    let d = triangle_kcore_decomposition(&g);
    for e in g.edge_ids() {
        assert_eq!(est.lambda(e), d.kappa(e));
    }
}
