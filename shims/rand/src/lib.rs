//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the subset of the `rand 0.8` API the
//! workspace uses: [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and
//! [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256++ seeded through
//! SplitMix64 — the same construction real `rand 0.8` uses on 64-bit
//! targets, though the exact output streams are not guaranteed to match the
//! upstream crate. Every generator in this workspace is seeded explicitly,
//! so determinism per seed (which the test-suite relies on) is preserved.

#![forbid(unsafe_code)]

/// A source of random bits plus the derived sampling helpers.
///
/// Mirrors the parts of `rand::Rng` the workspace uses. Implemented for
/// anything that can produce raw `u64` blocks via [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range type (`a..b` or `a..=b` over the
    /// supported primitives).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a supported primitive type from its standard
    /// distribution (uniform for integers and `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Raw 64-bit block generation; the base trait every RNG implements.
pub trait RngCore {
    /// Next raw 64-bit block.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit block (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Range types usable with [`Rng::gen_range`] to produce a `T`.
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Rejection-free (Lemire) bounded sampling for `n > 0`.
fn bounded_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply method; the rare biased zone is rejected.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n || lo >= (n.wrapping_neg() % n) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )+};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        let wide = (f64::from(self.start))..(f64::from(self.end));
        wide.sample(rng) as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator: xoshiro256++ seeded via
    /// SplitMix64 (the construction `rand 0.8` uses for its `SmallRng` on
    /// 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Slice extension trait: uniform choice and Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(bounded_u64(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0..1000u32)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0..1000u32)).collect();
        let vc: Vec<u32> = (0..16).map(|_| c.gen_range(0..1000u32)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(3..9u32);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&z));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
        }
    }

    #[test]
    fn bounded_sampling_covers_support() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            if let Some(slot) = seen.get_mut(rng.gen_range(0..6usize)) {
                *slot = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "rate off: {hits}");
    }

    #[test]
    fn unit_float_distribution() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
