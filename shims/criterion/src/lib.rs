//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the criterion 0.5 API the workspace's benches use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `b.iter(..)`,
//! [`criterion_group!`] / [`criterion_main!`] — backed by a simple
//! wall-clock harness: each benchmark is warmed up once, then timed over
//! `sample_size` samples, and the median per-iteration time is printed.
//! There is no statistical analysis, plotting, or baseline comparison.

#![forbid(unsafe_code)]
// Bench harness shim, not shipped code: the panic-surface wall
// (DESIGN.md §11) exempts it like the other offline stand-ins.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Times a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.sample_size, id, f);
        self
    }
}

/// Identifier for a parameterized benchmark (`function/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name plus a displayed parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_one(self.criterion.sample_size, &label, f);
        self
    }

    /// Times a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        run_one(self.criterion.sample_size, &label, |b| f(b, input));
        self
    }

    /// Ends the group (printing only; nothing to flush in this shim).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(sample_size: usize, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: pick an iteration count so one sample takes a
    // measurable slice of time without making the run interminable.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let best = samples[0];
    println!("bench {label:<56} median {median:>12?}  best {best:>12?}  ({iters} iters/sample)");
}

/// Declares a benchmark group entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_groups_and_functions() {
        let mut c = Criterion::default().sample_size(3);
        trivial(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(2 * 2)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = trivial
    }

    #[test]
    fn generated_group_entry_point_is_callable() {
        benches();
    }
}
