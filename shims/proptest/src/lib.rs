//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, ranges, tuples and
//!   [`collection::vec`],
//! * `any::<T>()`, [`prop_assert!`]/[`prop_assert_eq!`],
//! * [`test_runner::ProptestConfig`].
//!
//! Unlike real proptest there is no integrated shrinking; instead, every
//! failing case prints the seed, the case index, and a `Debug` dump of all
//! generated inputs before propagating the panic, which is enough to
//! reproduce deterministically (generation is a pure function of the seed).
//! The repo's `tkc-verify` crate layers a dedicated differential-oracle
//! shrinker on top for the dynamic-maintenance streams.

#![forbid(unsafe_code)]

use std::fmt::Debug;

pub mod strategy {
    //! Value-generation strategies: the [`Strategy`] trait and combinators.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A recipe for generating values of type `Self::Value` from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Strategy for the full standard distribution of `T` (`any::<T>()`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Generates arbitrary values of a supported primitive type.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(core::marker::PhantomData)
    }

    macro_rules! impl_any {
        ($($t:ty => $gen:expr),+ $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    let f: fn(&mut SmallRng) -> $t = $gen;
                    f(rng)
                }
            }
        )+};
    }

    impl_any! {
        bool => |rng| rng.gen::<bool>(),
        u32 => |rng| rng.gen::<u32>(),
        u64 => |rng| rng.gen::<u64>(),
        f64 => |rng| rng.gen::<f64>(),
        u8 => |rng| rng.gen_range(0..=u8::MAX),
        u16 => |rng| rng.gen_range(0..=u16::MAX),
        usize => |rng| rng.gen::<u64>() as usize,
        i32 => |rng| rng.gen::<u32>() as i32,
        i64 => |rng| rng.gen::<u64>() as i64,
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy producing `Vec`s with element strategy `S` and a length
    /// drawn uniformly from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy: lengths drawn from `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-running machinery behind the [`crate::proptest!`] macro.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Base seed; each case `i` runs with `seed + i`.
        pub seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                seed: 0x7c61_9c85,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    /// Runs `body` once per case with a deterministic per-case RNG.
    ///
    /// `body` receives the RNG and must return a `Debug` dump of the inputs
    /// it generated (printed only if the case panics).
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut SmallRng) -> Result<(), (String, Box<dyn std::any::Any + Send>)>,
    {
        for case in 0..config.cases {
            let seed = config.seed.wrapping_add(u64::from(case));
            let mut rng = SmallRng::seed_from_u64(seed);
            if let Err((dump, panic)) = body(&mut rng) {
                eprintln!(
                    "proptest: property `{name}` failed at case {case}/{} (seed {seed}).\n\
                     Generated inputs:\n{dump}",
                    config.cases
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub fn __format_input<T: Debug>(name: &str, value: &T) -> String {
    format!("  {name} = {value:?}\n")
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(x in strategy, ..) { body }`
/// becomes a `#[test]` running the body over deterministically seeded
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = { $crate::test_runner::ProptestConfig::default() };
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = { $cfg:expr }; ) => {};
    (cfg = { $cfg:expr };
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                let mut __dump = String::new();
                $(
                    let __generated =
                        $crate::strategy::Strategy::generate(&($strat), __rng);
                    __dump.push_str(&$crate::__format_input(
                        stringify!($arg),
                        &__generated,
                    ));
                    let $arg = __generated;
                )+
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || $body,
                )) {
                    Ok(()) => Ok(()),
                    Err(panic) => Err((__dump, panic)),
                }
            });
        }
        $crate::__proptest_items! { cfg = { $cfg }; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0..5i32) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0..5).contains(&y));
        }

        #[test]
        fn mapped_tuples_compose(v in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 18);
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0u32..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            let as_int = u8::from(b);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    fn failing_case_panics() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                &ProptestConfig::with_cases(16),
                "always_fails",
                |_rng| match std::panic::catch_unwind(|| panic!("boom")) {
                    Ok(()) => Ok(()),
                    Err(p) => Err((String::from("  (no inputs)\n"), p)),
                },
            );
        });
        assert!(result.is_err(), "failure must propagate");
    }
}
