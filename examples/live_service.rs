#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Live service: one ingest thread streams edges from a planted-partition
//! generator into a durable [`tkc_engine::Engine`] while query threads
//! read κ statistics from published epoch snapshots — no query ever waits
//! on ingest.
//!
//! Run with: `cargo run --release -p tkc-engine --example live_service`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tkc_engine::{Engine, EngineConfig, WalOp};
use tkc_graph::generators;

fn main() {
    let dir = std::env::temp_dir().join("tkc_live_service_example");
    std::fs::remove_dir_all(&dir).ok();
    let config = EngineConfig {
        fsync: false,  // demo data; a real deployment keeps this on
        epoch_ops: 64, // publish a fresh snapshot every 64 applied ops
        ..EngineConfig::new(&dir)
    };
    let engine = Arc::new(Engine::open(config).expect("open engine"));

    // The workload: a 4-community planted partition, streamed edge by edge.
    let g = generators::planted_partition(4, 30, 0.3, 0.01, 42);
    let ops: Vec<WalOp> = g
        .edge_ids()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            WalOp::Insert(u.index() as u32, v.index() as u32)
        })
        .collect();
    println!(
        "streaming {} edges over {} vertices into {}",
        ops.len(),
        g.num_vertices(),
        dir.display()
    );

    let done = Arc::new(AtomicBool::new(false));

    // Query threads: poll the published snapshot and report what they see.
    let readers: Vec<_> = (0..2)
        .map(|id| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last_epoch = 0;
                while !done.load(Ordering::Relaxed) {
                    let snap = engine.snapshot();
                    if snap.epoch() != last_epoch {
                        last_epoch = snap.epoch();
                        println!(
                            "[reader {id}] epoch {:>3}: {} edges, max κ = {}, {} triangles",
                            snap.epoch(),
                            snap.num_edges(),
                            snap.max_kappa(),
                            snap.triangle_count()
                        );
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        })
        .collect();

    // Ingest thread: apply the stream in small durable batches.
    let ingest_engine = Arc::clone(&engine);
    let ingest = std::thread::spawn(move || {
        for batch in ops.chunks(32) {
            ingest_engine.apply(batch).expect("apply batch");
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    ingest.join().unwrap();
    let final_epoch = engine.publish();
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    let snap = engine.snapshot();
    println!("\nfinal epoch {final_epoch}:");
    println!(
        "  {} vertices, {} edges, max κ = {}",
        snap.num_vertices(),
        snap.num_edges(),
        snap.max_kappa()
    );
    let truss = snap.truss(snap.max_kappa());
    println!(
        "  top truss (k = {}): {} components over {} edges / {} vertices",
        snap.max_kappa(),
        truss.cores,
        truss.edges,
        truss.vertices
    );
    println!("\nper-epoch update stats (cumulative):");
    for line in engine.metrics_text().lines() {
        println!("  {line}");
    }
    engine.compact().expect("compact");
    println!("\ncompacted: restart will replay 0 WAL ops");
}
