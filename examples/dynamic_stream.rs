#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Dynamic maintenance on an edge stream: replay a day of "social network"
//! churn against a live Triangle K-Core index and watch structures form
//! and dissolve — the Algorithm 2 workflow, with a periodic oracle check.
//!
//! Run with: `cargo run --release -p triangle-kcore --example dynamic_stream`

use triangle_kcore::prelude::*;

fn main() {
    // Start from yesterday's snapshot.
    let g = generators::holme_kim(3_000, 4, 0.6, 99);
    println!(
        "snapshot: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    let mut live = DynamicTriangleKCore::new(g);

    // A deterministic stream of friendship events: mostly triadic closures
    // (friend-of-friend), some cold links, occasional unfriending.
    let mut state = 0x2545f4914f6cdd1du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = live.graph().num_vertices() as u64;

    let mut formed_at: Vec<(usize, EdgeId, u32)> = Vec::new();
    for step in 0..2_000usize {
        let r = next();
        if r % 10 < 7 {
            // Triadic closure: pick a wedge u-w-v and close it.
            let u = VertexId((next() % n) as u32);
            if live.graph().degree(u) == 0 {
                continue;
            }
            let pick = |live: &DynamicTriangleKCore, x: VertexId, r: u64| {
                let d = live.graph().degree(x);
                live.graph()
                    .neighbors(x)
                    .nth((r % d as u64) as usize)
                    .unwrap()
                    .0
            };
            let w = pick(&live, u, next());
            let v = pick(&live, w, next());
            if u != v && !live.graph().has_edge(u, v) {
                let e = live.insert_edge(u, v).unwrap();
                if live.kappa(e) >= 3 {
                    formed_at.push((step, e, live.kappa(e)));
                }
            }
        } else if r % 10 < 9 {
            // Cold link between strangers.
            let u = VertexId((next() % n) as u32);
            let v = VertexId((next() % n) as u32);
            if u != v && !live.graph().has_edge(u, v) {
                live.insert_edge(u, v).unwrap();
            }
        } else {
            // Unfriend a random existing edge.
            let m = live.graph().num_edges();
            let idx = (next() % m as u64) as usize;
            let victim = live.graph().edge_ids().nth(idx);
            if let Some(e) = victim {
                live.remove_edge(e).unwrap();
            }
        }

        // Every 500 events, audit against a from-scratch Algorithm 1 run.
        if (step + 1) % 500 == 0 {
            let fresh = triangle_kcore_decomposition(live.graph());
            let ok = live
                .graph()
                .edge_ids()
                .all(|e| live.kappa(e) == fresh.kappa(e));
            assert!(ok, "maintained κ diverged from recompute");
            println!(
                "step {:>4}: {} edges, max κ so far verified ✓",
                step + 1,
                live.graph().num_edges()
            );
        }
    }

    let stats = live.stats();
    println!(
        "\nstream done: {} triangles activated, {} deactivated, {} promotions, {} demotions",
        stats.triangles_added, stats.triangles_removed, stats.promotions, stats.demotions
    );
    println!(
        "dense closures observed (new edge born with κ ≥ 3): {}",
        formed_at.len()
    );
    if let Some(&(step, e, k)) = formed_at.last() {
        println!(
            "  e.g. at step {step}: edge {:?} appeared inside a {}-clique-like region",
            live.graph().endpoints_checked(e),
            k + 2
        );
    }
}
