#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! The biology workflow of §VII-B/F: find near-clique protein complexes in
//! a PPI network, then probe for *bridge* structures connecting two
//! complexes — the pattern behind the paper's PRE1 finding.
//!
//! Run with: `cargo run --release -p triangle-kcore --example protein_complexes`

use triangle_kcore::datasets::ppi::{ppi_bridge_study, ppi_case_study};
use triangle_kcore::prelude::*;

fn main() {
    // Part 1 (Figure 7): three planted near-cliques at the plot's peaks.
    let (g, [c1, c2, c3]) = ppi_case_study(17);
    println!(
        "PPI network: {} proteins, {} interactions",
        g.num_vertices(),
        g.num_edges()
    );
    let decomp = triangle_kcore_decomposition(&g);
    let plot = kappa_density_plot(&g, &decomp);
    println!("{}", ascii_sparkline(&plot, 76));

    let found = densest_cliques(&g, &decomp, 3);
    println!("\ndensest exact cliques:");
    for c in found.iter().take(3) {
        println!("  {} proteins at level {}", c.vertices.len(), c.level);
    }
    // The planted exact 10-clique is recovered; the defective one (missing
    // one interaction) plots one level lower, exactly like the paper's
    // APC4–CDC16 case.
    let level_of = |members: &[VertexId]| {
        members
            .iter()
            .flat_map(|&u| members.iter().map(move |&v| (u, v)))
            .filter(|(u, v)| u < v)
            .filter_map(|(u, v)| g.edge_between(u, v))
            .map(|e| decomp.kappa(e))
            .max()
            .unwrap()
    };
    println!("\nplanted structures:");
    println!("  8-clique   → plotted as {}-clique", level_of(&c1) + 2);
    println!("  10-clique  → plotted as {}-clique", level_of(&c2) + 2);
    println!(
        "  10-clique minus one interaction → plotted as {}-clique",
        level_of(&c3) + 2
    );

    // Part 2 (Figure 12): bridge cliques across complex boundaries.
    let (g2, labels, bridge) = ppi_bridge_study(17);
    let ag = AttributedGraph::from_vertex_labels(g2, &labels);
    let res = detect_template(&ag, &BridgeClique);
    let top = res.top_structures(1);
    let hub = bridge[0];
    println!(
        "\nbridge probe: densest inter-complex structure has {} proteins at level {}",
        top[0].vertices.len(),
        top[0].level
    );
    println!(
        "hub protein {} (complex {}) connects into complex {} — a PRE1-style bridge node",
        hub,
        labels[hub.index()],
        labels[bridge[1].index()]
    );
    assert!(top[0].vertices.contains(&hub));
}
