#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Long-horizon temporal analysis: replay a five-year collaboration series
//! through the incremental maintainer, print each year's density profile,
//! and track how one community evolves year over year.
//!
//! Run with: `cargo run --release -p triangle-kcore --example temporal_tracking`

use triangle_kcore::datasets::temporal::collaboration_series;
use triangle_kcore::patterns::{detect_events, Event, EventOptions};
use triangle_kcore::prelude::*;

fn main() {
    let years = 5;
    let (net, planted) = collaboration_series(1200, 700, years, 21);
    println!(
        "collaboration series: {} snapshots, {} authors\n",
        net.len(),
        net.snapshot(0).num_vertices()
    );

    // Replay with the incremental maintainer; print per-year profiles.
    let mut profiles: Vec<(usize, u32)> = Vec::new();
    let diffs = net.replay_with(|t, m| {
        let d = triangle_kcore_decomposition(m.graph());
        let stats = kappa_stats(m.graph(), &d);
        println!(
            "year {t}: {} edges, max κ = {}, mean κ = {:.2}",
            stats.edges, stats.max_kappa, stats.mean_kappa
        );
        profiles.push((stats.edges, stats.max_kappa));
    });
    println!("\nper-transition churn (removed, added): {diffs:?}");

    // Track the planted growing community with year-over-year events.
    println!("\ntracking the planted community (starts with 4 members):");
    for t in 0..net.len() - 1 {
        let level = planted[t].len() as u32 - 2;
        // A strict stability cutoff so one-member growth registers as GROW
        // rather than a near-identical CONTINUE.
        let opts = EventOptions {
            stability_threshold: 0.95,
            ..Default::default()
        };
        let rep = detect_events(net.snapshot(t), net.snapshot(t + 1), level, &opts);
        let located = rep.events.iter().find(|e| match e {
            Event::Grow { after, .. }
            | Event::Continue { after, .. }
            | Event::Merge { after, .. } => planted[t + 1]
                .iter()
                .all(|v| rep.new_cores[*after].vertices.contains(v)),
            _ => false,
        });
        match located {
            Some(Event::Grow { gained, .. }) => {
                println!("  year {t} → {}: GROW (+{gained})", t + 1)
            }
            Some(Event::Continue { jaccard, .. }) => {
                println!("  year {t} → {}: CONTINUE (jaccard {jaccard:.2})", t + 1)
            }
            Some(Event::Merge { before, .. }) => {
                println!("  year {t} → {}: MERGE of {} cores", t + 1, before.len())
            }
            _ => println!("  year {t} → {}: not located at level {level}", t + 1),
        }
    }
    assert_eq!(profiles.len(), years);
    println!(
        "\nthe planted community grew from {} to {} members across the series.",
        planted[0].len(),
        planted[years - 1].len()
    );
}
