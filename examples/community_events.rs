#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Event detection on an evolving network: classify how the dense
//! communities of one snapshot became those of the next (continue / grow /
//! shrink / merge / split / form / dissolve) — the "characterizing the
//! type of change" use case from the paper's introduction.
//!
//! Run with: `cargo run --release -p triangle-kcore --example community_events`

use triangle_kcore::patterns::{detect_events, Event, EventOptions};
use triangle_kcore::prelude::*;

fn main() {
    // Snapshot 1: background noise plus four planted communities.
    let mut old = generators::gnp(300, 0.005, 9);
    let base = old.num_vertices();
    old.add_vertices(6 + 6 + 7 + 5);
    let a: Vec<VertexId> = (base..base + 6).map(VertexId::from).collect();
    let b: Vec<VertexId> = (base + 6..base + 12).map(VertexId::from).collect();
    let c: Vec<VertexId> = (base + 12..base + 19).map(VertexId::from).collect();
    let d: Vec<VertexId> = (base + 19..base + 24).map(VertexId::from).collect();
    for grp in [&a, &b, &c, &d] {
        generators::plant_clique(&mut old, grp);
    }

    // Snapshot 2: A and B merge; C grows by two; D dissolves; E forms.
    let mut new = generators::gnp(300, 0.005, 10);
    new.add_vertices(old.num_vertices() - new.num_vertices() + 8);
    let ab: Vec<VertexId> = a.iter().chain(&b).copied().collect();
    generators::plant_clique(&mut new, &ab);
    let mut c2 = c.clone();
    c2.push(VertexId::from(old.num_vertices()));
    c2.push(VertexId::from(old.num_vertices() + 1));
    generators::plant_clique(&mut new, &c2);
    let e: Vec<VertexId> = (old.num_vertices() + 2..old.num_vertices() + 8)
        .map(VertexId::from)
        .collect();
    generators::plant_clique(&mut new, &e);
    // (D's clique is simply absent from snapshot 2.)

    let report = detect_events(&old, &new, 3, &EventOptions::default());
    println!(
        "level-3 cores: {} before, {} after",
        report.old_cores.len(),
        report.new_cores.len()
    );
    for ev in &report.events {
        match ev {
            Event::Continue {
                before,
                after,
                jaccard,
            } => println!("  CONTINUE  old#{before} → new#{after} (jaccard {jaccard:.2})"),
            Event::Grow {
                before,
                after,
                gained,
            } => println!("  GROW      old#{before} → new#{after} (+{gained} vertices)"),
            Event::Shrink {
                before,
                after,
                lost,
            } => println!("  SHRINK    old#{before} → new#{after} (-{lost} vertices)"),
            Event::Merge { before, after } => println!("  MERGE     old#{before:?} → new#{after}"),
            Event::Split { before, after } => println!("  SPLIT     old#{before} → new#{after:?}"),
            Event::Form { after } => println!("  FORM      → new#{after}"),
            Event::Dissolve { before } => println!("  DISSOLVE  old#{before}"),
        }
    }

    let has = |pred: &dyn Fn(&Event) -> bool| report.events.iter().any(pred);
    assert!(
        has(&|e| matches!(e, Event::Merge { .. })),
        "A+B merge missed"
    );
    assert!(
        has(&|e| matches!(e, Event::Grow { gained: 2, .. })),
        "C growth missed"
    );
    assert!(
        has(&|e| matches!(e, Event::Dissolve { .. })),
        "D dissolve missed"
    );
    assert!(
        has(&|e| matches!(e, Event::Form { .. })),
        "E formation missed"
    );
    println!("\nall four planted events recovered.");
}
