#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Quickstart: decompose a graph, inspect κ values, extract the densest
//! clique-like structures, and draw a density plot in the terminal.
//!
//! Run with: `cargo run --release -p triangle-kcore --example quickstart`

use triangle_kcore::prelude::*;

fn main() {
    // A network with community structure: 4 planted communities plus two
    // extra cliques buried in background noise.
    let mut g = generators::planted_partition(4, 25, 0.25, 0.01, 7);
    let planted = generators::plant_fresh_cliques(&mut g, 2, 8, 3, 7);
    println!(
        "graph: {} vertices, {} edges, {} triangles",
        g.num_vertices(),
        g.num_edges(),
        triangles::triangle_count(&g)
    );

    // Algorithm 1: every edge's maximum Triangle K-Core number.
    let decomp = triangle_kcore_decomposition(&g);
    println!(
        "max κ = {} (an {}-clique-like peak)",
        decomp.max_kappa(),
        decomp.max_kappa() + 2
    );
    println!("κ histogram: {:?}", decomp.histogram());

    // The planted 8-cliques surface as exact cliques at level 6.
    let cliques = densest_cliques(&g, &decomp, 2);
    for c in &cliques {
        println!(
            "found {} vertices at level {} ({})",
            c.vertices.len(),
            c.level,
            if c.is_clique() {
                "exact clique"
            } else {
                "clique-like"
            }
        );
    }
    assert!(cliques
        .iter()
        .any(|c| c.vertices == planted[0] || c.vertices == planted[1]));

    // Per-edge queries: the maximum Triangle K-Core of one planted edge.
    let e = g.edge_between(planted[0][0], planted[0][1]).unwrap();
    let core = maximum_core_of_edge(&g, &decomp, e).unwrap();
    println!(
        "edge {:?} lives in a Triangle {}-Core spanning {} vertices",
        g.endpoints(e),
        core.level,
        core.vertices.len()
    );

    // And the paper's signature visualization: the density plot.
    let plot = kappa_density_plot(&g, &decomp);
    println!("\ndensity plot ({} vertices):", plot.len());
    println!("{}", ascii_sparkline(&plot, 80));
}
