#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Template pattern cliques on an evolving collaboration network: the
//! three built-in patterns plus a fully custom one, as in §V and the DBLP
//! case studies (Figures 9–11).
//!
//! Run with: `cargo run --release -p triangle-kcore --example template_patterns`

use triangle_kcore::datasets::collaboration::{
    bridge_scenario, new_form_scenario, new_join_scenario,
};
use triangle_kcore::patterns::TriangleAttrs;
use triangle_kcore::prelude::*;

fn show(name: &str, ag: &AttributedGraph, template: &dyn Template) {
    let res = detect_template(ag, template);
    let plot = density_order(ag.graph(), &res.co_clique);
    println!("\n== {name} ==");
    println!("special edges: {:>6}", res.special_edge_count());
    println!("plot: {}", ascii_sparkline(&plot, 72));
    for core in res.top_structures(2) {
        println!(
            "  {} vertices at level {} ({})",
            core.vertices.len(),
            core.level,
            if core.is_clique() {
                "exact clique"
            } else {
                "clique-like"
            }
        );
    }
}

fn main() {
    // Three planted evolutions over the same kind of background churn.
    let (old_nf, new_nf, _) = new_form_scenario(1500, 900, 6, 5);
    show(
        "New Form Cliques (first-time collaborations)",
        &AttributedGraph::from_snapshots(&old_nf, &new_nf),
        &NewFormClique,
    );

    let (old_b, new_b, _) = bridge_scenario(1500, 900, 4, 2, 5);
    show(
        "Bridge Cliques (two groups merging)",
        &AttributedGraph::from_snapshots(&old_b, &new_b),
        &BridgeClique,
    );

    let (old_nj, new_nj, _) = new_join_scenario(1500, 900, 3, 6, 5);
    show(
        "New Join Cliques (veterans joined by newcomers)",
        &AttributedGraph::from_snapshots(&old_nj, &new_nj),
        &NewJoinClique,
    );

    // A custom pattern: "renewal cliques" — groups whose every triangle
    // mixes old and new collaboration edges (neither all-old nor all-new).
    let custom = CustomTemplate::new(
        "renewal",
        |t: &TriangleAttrs| t.new_vertices() == 0 && (1..=2).contains(&t.new_edges()),
        |t: &TriangleAttrs| t.new_edges() == 0 || t.new_edges() == 3,
    );
    show(
        "Custom: renewal cliques (mixed old/new interaction)",
        &AttributedGraph::from_snapshots(&old_b, &new_b),
        &custom,
    );
}
