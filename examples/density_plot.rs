#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Density plots end to end: build (or load) a graph, compare the
//! Triangle K-Core proxy against the exact CSV estimation, and write SVG +
//! TSV artifacts.
//!
//! Run with: `cargo run --release -p triangle-kcore --example density_plot
//! [path/to/edge_list.txt]` — with no argument a PPI-scale stand-in is
//! generated.

use triangle_kcore::baselines::csv::{csv_co_clique_sizes, CsvOptions};
use triangle_kcore::prelude::*;
use triangle_kcore::viz::ordering::plot_similarity;
use triangle_kcore::viz::plot::{density_plot_tsv, draw_series_pair};

fn main() {
    let g = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading edge list from {path}");
            io::load_edge_list(&path).expect("readable edge list")
        }
        None => triangle_kcore::datasets::build(triangle_kcore::datasets::DatasetId::Ppi, 0.5, 11),
    };
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Proxy plot: κ + 2 per edge (one peel, linear in triangles).
    let t = std::time::Instant::now();
    let decomp = triangle_kcore_decomposition(&g);
    let mut proxy_vals = vec![0u32; g.edge_bound()];
    for e in g.edge_ids() {
        proxy_vals[e.index()] = decomp.kappa(e) + 2;
    }
    let proxy_plot = density_order(&g, &proxy_vals);
    println!("Triangle K-Core proxy computed in {:?}", t.elapsed());

    // Exact-ish plot: CSV's per-edge max-clique estimation (much slower).
    let t = std::time::Instant::now();
    let csv = csv_co_clique_sizes(&g, &CsvOptions::default());
    let csv_plot = density_order(&g, &csv.co_clique);
    println!(
        "CSV estimation computed in {:?} ({} budget-capped edges)",
        t.elapsed(),
        csv.budget_exhausted
    );

    let sim = plot_similarity(&csv_plot, &proxy_plot, g.num_vertices());
    println!("per-vertex value correlation: {sim:.4}");
    println!("proxy : {}", ascii_sparkline(&proxy_plot, 76));
    println!("CSV   : {}", ascii_sparkline(&csv_plot, 76));

    let out = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(out).unwrap();
    std::fs::write(
        out.join("example_density_pair.svg"),
        draw_series_pair(
            &csv_plot,
            &proxy_plot,
            "CSV co-clique sizes",
            "Triangle K-Core proxy (κ+2)",
            900,
            220,
        ),
    )
    .unwrap();
    std::fs::write(
        out.join("example_density.tsv"),
        density_plot_tsv(&proxy_plot),
    )
    .unwrap();
    println!("artifacts in {}", out.display());
}
